//! Open-loop multi-tenant KV *service* workload — the "heavy traffic from
//! millions of users" scenario (an extension beyond the paper's
//! closed-loop suite).
//!
//! The paper's five workloads are closed-loop: each core issues its next
//! transaction the moment the previous one retires, so queueing delay is
//! invisible. A service front-end is the opposite regime — requests
//! arrive on their own schedule whether or not the memory system keeps
//! up, and the interesting number is the *tail* of the persist-ACK
//! latency measured from the **arrival** timestamp (queueing included).
//!
//! This module provides the trace-side half of that subsystem:
//!
//! * [`PoissonArrivals`] — seeded open-loop arrival schedule with
//!   exponential inter-arrival gaps (mean = 1/λ cycles),
//! * [`Zipfian`] — YCSB-style skewed key popularity (Gray et al.
//!   rejection-free generator),
//! * [`OpMix`] — YCSB A/B/F operation mixes with *exact* ratios over any
//!   window of 1000 requests (stride scheduler, not sampling),
//! * [`ServiceSpec`] / [`generate_service`] — many logical tenants, each
//!   a persistent chained hash table, multiplexed round-robin over the
//!   simulated cores; every request becomes a durable transaction through
//!   the ordinary [`TxRuntime`] discipline and is recorded in a
//!   [`ServiceTrace`] with its arrival cycle and op extent.
//!
//! The simulator's `run_service` replays the trace gating each request at
//! its arrival timestamp and reports per-request persist-ACK latency
//! histograms; `thoth-service` sweeps offered load over that to produce
//! the saturation curve.

use crate::hashmap::HashMapPm;
use crate::runtime::{MultiCoreTrace, TxRuntime};
use crate::spec::core_heap_base;
use thoth_sim_engine::DetRng;

// ---------------------------------------------------------------------
// Arrival schedule
// ---------------------------------------------------------------------

/// A seeded Poisson arrival process: exponential inter-arrival gaps with
/// a configurable mean, accumulated into absolute arrival cycles.
///
/// # Example
///
/// ```
/// use thoth_workloads::service::PoissonArrivals;
///
/// let mut a = PoissonArrivals::new(7, 1000.0);
/// let first = a.next_arrival();
/// let second = a.next_arrival();
/// assert!(second >= first);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: DetRng,
    mean_cycles: f64,
    clock: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given seed and mean inter-arrival gap
    /// (in cycles; the offered rate is `1/mean` requests per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `mean_cycles` is not strictly positive.
    #[must_use]
    pub fn new(seed: u64, mean_cycles: f64) -> Self {
        assert!(mean_cycles > 0.0, "mean inter-arrival must be positive");
        PoissonArrivals {
            rng: DetRng::seed_from(seed),
            mean_cycles,
            clock: 0.0,
        }
    }

    /// Draws the next exponential inter-arrival gap, in cycles.
    pub fn next_gap(&mut self) -> f64 {
        // u ∈ [0,1) → 1-u ∈ (0,1] → ln is finite, gap ≥ 0.
        let u = self.rng.gen_f64();
        -self.mean_cycles * (1.0 - u).ln()
    }

    /// Advances the schedule and returns the next absolute arrival cycle.
    pub fn next_arrival(&mut self) -> u64 {
        self.clock += self.next_gap();
        self.clock as u64
    }
}

// ---------------------------------------------------------------------
// Key popularity
// ---------------------------------------------------------------------

/// YCSB-style Zipfian rank generator (Gray et al., "Quickly generating
/// billion-record synthetic databases"): rank 0 is the most popular of
/// `n` items; `P(rank r) ∝ 1/(r+1)^theta`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Builds a generator over `n` ranks with skew `theta` (YCSB default
    /// 0.99; `theta = 0` degenerates to uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `[0, 1)`.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipfian needs at least one rank");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// The generalized harmonic number `sum_{i=1..n} 1/i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of ranks.
    #[must_use]
    pub fn ranks(&self) -> u64 {
        self.n
    }

    /// Draws the next rank in `[0, n)`, most popular first.
    pub fn next_rank(&mut self, rng: &mut DetRng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// Scatters a popularity rank onto a key in `[0, n)` so hot keys spread
/// across the tenant's hash-table buckets (YCSB's `fnv(rank) % n` idiom,
/// here a Fibonacci scramble).
#[must_use]
pub fn scatter_rank(rank: u64, n: u64) -> u64 {
    rank.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) % n
}

// ---------------------------------------------------------------------
// Operation mix
// ---------------------------------------------------------------------

/// What one service request does to its tenant's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Point lookup (read-only; commits nothing).
    Read,
    /// Blind value update (insert-or-update transaction).
    Update,
    /// Read-modify-write: lookup then update of the same key.
    Rmw,
}

impl ReqKind {
    /// Stable lowercase tag for reports.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            ReqKind::Read => "read",
            ReqKind::Update => "update",
            ReqKind::Rmw => "rmw",
        }
    }
}

/// The YCSB mixes the service models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// YCSB-A: 50% reads, 50% updates (update heavy).
    A,
    /// YCSB-B: 95% reads, 5% updates (read heavy).
    B,
    /// YCSB-F: 50% reads, 50% read-modify-writes.
    F,
}

impl MixKind {
    /// Per-mille weights `(read, update, rmw)`; always sums to 1000.
    #[must_use]
    pub fn per_mille(self) -> (u32, u32, u32) {
        match self {
            MixKind::A => (500, 500, 0),
            MixKind::B => (950, 50, 0),
            MixKind::F => (500, 0, 500),
        }
    }

    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MixKind::A => "ycsb-a",
            MixKind::B => "ycsb-b",
            MixKind::F => "ycsb-f",
        }
    }
}

/// Deterministic op-mix scheduler with **exact** ratios: request `i` maps
/// to the per-mille slot `(phase + i·STRIDE) mod 1000`, and because the
/// stride is coprime with 1000, every window of 1000 consecutive requests
/// hits each slot exactly once — so the mix ratios are exact (not merely
/// expected) over any multiple of 1000 draws. The seeded phase varies the
/// interleaving between cores without perturbing the ratios.
#[derive(Debug, Clone)]
pub struct OpMix {
    read_pm: u32,
    update_pm: u32,
    phase: u32,
    n: u64,
}

/// Slot stride; 567 = 7·3⁴ is coprime with 1000.
const MIX_STRIDE: u64 = 567;

impl OpMix {
    /// Builds the scheduler for `mix` with a seeded phase.
    #[must_use]
    pub fn new(mix: MixKind, phase_seed: u64) -> Self {
        let (read_pm, update_pm, rmw_pm) = mix.per_mille();
        debug_assert_eq!(read_pm + update_pm + rmw_pm, 1000);
        OpMix {
            read_pm,
            update_pm,
            phase: (phase_seed % 1000) as u32,
            n: 0,
        }
    }

    /// The kind of the next request.
    pub fn draw(&mut self) -> ReqKind {
        let slot = ((u64::from(self.phase) + self.n * MIX_STRIDE) % 1000) as u32;
        self.n += 1;
        if slot < self.read_pm {
            ReqKind::Read
        } else if slot < self.read_pm + self.update_pm {
            ReqKind::Update
        } else {
            ReqKind::Rmw
        }
    }
}

// ---------------------------------------------------------------------
// Spec + trace
// ---------------------------------------------------------------------

/// Configuration of one open-loop service trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSpec {
    /// Simulated cores serving the request streams.
    pub cores: usize,
    /// Logical tenants, multiplexed round-robin over the cores (tenant
    /// `t` is served by core `t % cores`); each tenant owns an
    /// independent persistent hash table and key space.
    pub tenants: usize,
    /// Measured requests per core.
    pub requests_per_core: usize,
    /// Leading warm-up requests per core (replayed but excluded from the
    /// latency histograms).
    pub warmup_requests_per_core: usize,
    /// Mean inter-arrival gap per core in cycles (open-loop offered load;
    /// the offered rate is `cores/mean` requests per cycle).
    pub mean_interarrival_cycles: f64,
    /// Zipfian skew of key popularity within each tenant (`0` = uniform;
    /// YCSB default 0.99 — capped below 1).
    pub zipf_theta: f64,
    /// Operation mix.
    pub mix: MixKind,
    /// Keys per tenant.
    pub keys_per_tenant: u64,
    /// Value-blob size in bytes.
    pub value_bytes: usize,
    /// Untraced pre-population inserts per tenant (the database-loading
    /// phase).
    pub prepopulate_per_tenant: u64,
    /// RNG seed; the whole trace (arrivals, keys, tenants) is a pure
    /// function of the spec.
    pub seed: u64,
}

impl ServiceSpec {
    /// A service-flavoured default: 4 cores, 16 tenants, YCSB-A, 0.99
    /// skew, moderate offered load.
    #[must_use]
    pub fn default_spec() -> Self {
        ServiceSpec {
            cores: 4,
            tenants: 16,
            requests_per_core: 2000,
            warmup_requests_per_core: 400,
            mean_interarrival_cycles: 6000.0,
            zipf_theta: 0.99,
            mix: MixKind::A,
            keys_per_tenant: 4096,
            value_bytes: 128,
            prepopulate_per_tenant: 2048,
            seed: 0xC0FFEE,
        }
    }

    /// Scales the request counts by `f` (quick/CI variants).
    #[must_use]
    pub fn scaled(mut self, f: f64) -> Self {
        self.requests_per_core = ((self.requests_per_core as f64 * f) as usize).max(1);
        self.warmup_requests_per_core =
            ((self.warmup_requests_per_core as f64 * f) as usize).max(1);
        self
    }

    /// Offered load in requests per million cycles, across all cores.
    #[must_use]
    pub fn offered_per_mcycle(&self) -> f64 {
        self.cores as f64 * 1.0e6 / self.mean_interarrival_cycles
    }
}

/// One request's schedule entry: where it lands in the op stream and when
/// it arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMeta {
    /// Absolute arrival cycle (open-loop schedule, independent of
    /// service progress).
    pub arrival: u64,
    /// Number of consecutive trace ops this request spans.
    pub ops: u32,
    /// Owning tenant.
    pub tenant: u16,
    /// Operation kind.
    pub kind: ReqKind,
    /// `false` for warm-up requests (excluded from latency histograms).
    pub measured: bool,
}

/// An open-loop service trace: the op streams plus, per core, the
/// in-order request schedule partitioning that core's ops.
#[derive(Debug, Clone)]
pub struct ServiceTrace {
    /// The replayable op streams (warm-up boundary is per-request, so
    /// `warmup_txs_per_core` is 0 here).
    pub trace: MultiCoreTrace,
    /// Per-core request schedules; `requests[c]` partitions
    /// `trace.cores[c]` exactly (the op counts sum to the stream length).
    pub requests: Vec<Vec<RequestMeta>>,
    /// Total logical tenants.
    pub tenants: usize,
}

/// Aggregate request-kind counts of a [`ServiceTrace`] — the "real mix"
/// summary that seeds the persist-trace fuzzer's address-overlap bias
/// (see [`crate::fuzz::FuzzSpec::biased`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixStats {
    /// Point lookups.
    pub reads: u64,
    /// Blind updates.
    pub updates: u64,
    /// Read-modify-writes.
    pub rmws: u64,
}

impl MixStats {
    /// Mutating requests (updates + RMWs) per thousand requests.
    #[must_use]
    pub fn mutate_per_mille(&self) -> u32 {
        let total = self.reads + self.updates + self.rmws;
        if total == 0 {
            return 0;
        }
        (1000 * (self.updates + self.rmws) / total) as u32
    }
}

impl ServiceTrace {
    /// Total requests across all cores (warm-up included).
    #[must_use]
    pub fn total_requests(&self) -> usize {
        self.requests.iter().map(Vec::len).sum()
    }

    /// Counts request kinds across all cores (warm-up included — the mix
    /// generator draws identically in both phases).
    #[must_use]
    pub fn mix_stats(&self) -> MixStats {
        let mut s = MixStats::default();
        for r in self.requests.iter().flatten() {
            match r.kind {
                ReqKind::Read => s.reads += 1,
                ReqKind::Update => s.updates += 1,
                ReqKind::Rmw => s.rmws += 1,
            }
        }
        s
    }

    /// Measured (non-warm-up) requests across all cores.
    #[must_use]
    pub fn measured_requests(&self) -> usize {
        self.requests
            .iter()
            .flatten()
            .filter(|r| r.measured)
            .count()
    }
}

/// Generates the open-loop service trace for `spec`.
///
/// # Panics
///
/// Panics on a spec with zero cores or zero tenants.
#[must_use]
pub fn generate_service(spec: &ServiceSpec) -> ServiceTrace {
    assert!(spec.cores > 0, "need at least one core");
    assert!(
        spec.tenants >= spec.cores,
        "need at least one tenant per core"
    );
    let mut master = DetRng::seed_from(spec.seed);
    let mut cores = Vec::with_capacity(spec.cores);
    let mut requests = Vec::with_capacity(spec.cores);
    for core in 0..spec.cores {
        let mut rng = master.fork();
        let mut rt = TxRuntime::new(core_heap_base(core));
        let tenant_ids: Vec<u16> = (0..spec.tenants)
            .filter(|t| t % spec.cores == core)
            .map(|t| t as u16)
            .collect();

        // Database-loading phase: untraced, but the tables really exist.
        rt.set_tracing(false);
        let mut tables = Vec::with_capacity(tenant_ids.len());
        for _ in &tenant_ids {
            rt.begin();
            let buckets = (spec.keys_per_tenant / 2).max(16);
            let mut map = HashMapPm::create(&mut rt, buckets, spec.value_bytes);
            rt.commit();
            for k in 0..spec.prepopulate_per_tenant.min(spec.keys_per_tenant) {
                rt.begin();
                map.insert(&mut rt, k, 0);
                rt.commit();
            }
            tables.push(map);
        }
        rt.set_tracing(true);

        let mut arrivals =
            PoissonArrivals::new(rng.next_u64(), spec.mean_interarrival_cycles);
        let mut zipf = Zipfian::new(spec.keys_per_tenant, spec.zipf_theta);
        let mut mix = OpMix::new(spec.mix, rng.next_u64());
        let total = spec.warmup_requests_per_core + spec.requests_per_core;
        let mut metas = Vec::with_capacity(total);
        for i in 0..total {
            let arrival = arrivals.next_arrival();
            let ti = rng.gen_index(tenant_ids.len());
            let kind = mix.draw();
            let key = scatter_rank(zipf.next_rank(&mut rng), spec.keys_per_tenant);
            let ops_before = rt.trace_len();
            let map = &mut tables[ti];
            match kind {
                ReqKind::Read => {
                    rt.begin();
                    let _ = map.lookup(&mut rt, key);
                    rt.commit();
                }
                ReqKind::Update => {
                    rt.begin();
                    map.insert(&mut rt, key, i as u64);
                    rt.commit();
                }
                ReqKind::Rmw => {
                    rt.begin();
                    let _ = map.lookup(&mut rt, key);
                    map.insert(&mut rt, key, i as u64);
                    rt.commit();
                }
            }
            let ops = (rt.trace_len() - ops_before) as u32;
            debug_assert!(ops > 0, "every request emits at least one op");
            metas.push(RequestMeta {
                arrival,
                ops,
                tenant: tenant_ids[ti],
                kind,
                measured: i >= spec.warmup_requests_per_core,
            });
        }
        cores.push(rt.into_trace());
        requests.push(metas);
    }
    ServiceTrace {
        trace: MultiCoreTrace {
            cores,
            warmup_txs_per_core: 0,
        },
        requests,
        tenants: spec.tenants,
    }
}

/// Closed-loop service core for the generic [`crate::WorkloadKind`]
/// dispatch (psan clean sweeps and crash audits drive the service through
/// this path — same data structures and op mix, no arrival schedule).
/// `keyspace` is the total keys across the core's tenants.
pub fn run_closed(
    rt: &mut TxRuntime,
    rng: &mut DetRng,
    prepopulate: usize,
    txs: usize,
    value_bytes: usize,
    keyspace: u64,
) {
    const TENANTS_PER_CORE: usize = 4;
    let keys_per_tenant = (keyspace / TENANTS_PER_CORE as u64).max(16);
    rt.set_tracing(false);
    let mut tables = Vec::with_capacity(TENANTS_PER_CORE);
    for _ in 0..TENANTS_PER_CORE {
        rt.begin();
        let mut map = HashMapPm::create(rt, (keys_per_tenant / 2).max(16), value_bytes);
        rt.commit();
        for k in 0..(prepopulate as u64 / TENANTS_PER_CORE as u64).min(keys_per_tenant) {
            rt.begin();
            map.insert(rt, k, 0);
            rt.commit();
        }
        tables.push(map);
    }
    rt.set_tracing(true);
    let mut zipf = Zipfian::new(keys_per_tenant, 0.99);
    let mut mix = OpMix::new(MixKind::A, rng.next_u64());
    for i in 0..txs {
        let ti = rng.gen_index(TENANTS_PER_CORE);
        let key = scatter_rank(zipf.next_rank(rng), keys_per_tenant);
        let map = &mut tables[ti];
        match mix.draw() {
            ReqKind::Read => {
                rt.begin();
                let _ = map.lookup(rt, key);
                rt.commit();
            }
            ReqKind::Update => {
                rt.begin();
                map.insert(rt, key, i as u64);
                rt.commit();
            }
            ReqKind::Rmw => {
                rt.begin();
                let _ = map.lookup(rt, key);
                map.insert(rt, key, i as u64);
                rt.commit();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ServiceSpec {
        let mut s = ServiceSpec::default_spec();
        s.cores = 2;
        s.tenants = 5;
        s.requests_per_core = 60;
        s.warmup_requests_per_core = 10;
        s.keys_per_tenant = 256;
        s.prepopulate_per_tenant = 64;
        s
    }

    // -- statistical generator tests (satellite) ----------------------

    #[test]
    fn poisson_mean_within_one_percent() {
        // Seeded exponential draws: the sample mean over 1e5 gaps must be
        // within 1% of the configured mean (deterministic, fixed seed).
        let mean = 2500.0;
        let mut a = PoissonArrivals::new(42, mean);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| a.next_gap()).sum();
        let sample_mean = total / f64::from(n);
        let rel = (sample_mean - mean).abs() / mean;
        assert!(rel < 0.01, "sample mean {sample_mean} vs {mean} (rel {rel})");
    }

    #[test]
    fn poisson_arrivals_are_nondecreasing_and_deterministic() {
        let mut a = PoissonArrivals::new(9, 100.0);
        let mut b = PoissonArrivals::new(9, 100.0);
        let mut prev = 0;
        for _ in 0..1000 {
            let x = a.next_arrival();
            assert_eq!(x, b.next_arrival());
            assert!(x >= prev);
            prev = x;
        }
    }

    #[test]
    fn zipfian_rank_frequency_slope_matches_theta() {
        // Rank-frequency on a log-log scale must fall with slope ≈ -theta.
        // Fit over the top ranks (they have enough mass to estimate).
        let theta = 0.99;
        let n = 1000;
        let draws = 200_000;
        let mut z = Zipfian::new(n, theta);
        let mut rng = DetRng::seed_from(7);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.next_rank(&mut rng) as usize] += 1;
        }
        // Least-squares slope of ln(count) vs ln(rank+1) over ranks 0..50.
        let pts: Vec<(f64, f64)> = (0..50)
            .filter(|&r| counts[r] > 0)
            .map(|r| (((r + 1) as f64).ln(), (counts[r] as f64).ln()))
            .collect();
        let m = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
        assert!(
            (slope + theta).abs() < 0.1,
            "rank-frequency slope {slope} should be ≈ {}",
            -theta
        );
        // Skew sanity: the most popular rank dominates a uniform share.
        assert!(counts[0] > 10 * draws / n);
    }

    #[test]
    fn zipfian_theta_zero_is_roughly_uniform() {
        let n = 100;
        let mut z = Zipfian::new(n, 0.0);
        let mut rng = DetRng::seed_from(3);
        let mut counts = vec![0u64; n as usize];
        let draws = 100_000;
        for _ in 0..draws {
            counts[z.next_rank(&mut rng) as usize] += 1;
        }
        let expected = draws as f64 / n as f64;
        for (r, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.25,
                "rank {r} count {c} vs uniform {expected}"
            );
        }
    }

    #[test]
    fn op_mix_ratios_exact_over_1e5_draws() {
        // 1e5 is a multiple of 1000, so every mix must hit its per-mille
        // weights *exactly* (the stride scheduler visits each slot of the
        // 1000-slot frame exactly once per window).
        for (mix, phase) in [
            (MixKind::A, 0),
            (MixKind::A, 12345),
            (MixKind::B, 17),
            (MixKind::F, 999),
        ] {
            let mut m = OpMix::new(mix, phase);
            let (mut reads, mut updates, mut rmws) = (0u32, 0u32, 0u32);
            for _ in 0..100_000 {
                match m.draw() {
                    ReqKind::Read => reads += 1,
                    ReqKind::Update => updates += 1,
                    ReqKind::Rmw => rmws += 1,
                }
            }
            let (r, u, w) = mix.per_mille();
            assert_eq!(reads, r * 100, "{} reads", mix.name());
            assert_eq!(updates, u * 100, "{} updates", mix.name());
            assert_eq!(rmws, w * 100, "{} rmws", mix.name());
        }
    }

    // -- trace generation ---------------------------------------------

    #[test]
    fn request_ops_partition_the_trace_exactly() {
        let st = generate_service(&tiny_spec());
        assert_eq!(st.trace.cores.len(), 2);
        for (core, metas) in st.trace.cores.iter().zip(&st.requests) {
            let total: u64 = metas.iter().map(|m| u64::from(m.ops)).sum();
            assert_eq!(total, core.len() as u64);
            assert!(metas.iter().all(|m| m.ops > 0));
        }
    }

    #[test]
    fn arrivals_are_monotone_per_core() {
        let st = generate_service(&tiny_spec());
        for metas in &st.requests {
            for w in metas.windows(2) {
                assert!(w[0].arrival <= w[1].arrival);
            }
        }
    }

    #[test]
    fn warmup_requests_lead_and_are_unmeasured() {
        let spec = tiny_spec();
        let st = generate_service(&spec);
        for metas in &st.requests {
            assert_eq!(metas.len(), 70);
            assert!(metas[..10].iter().all(|m| !m.measured));
            assert!(metas[10..].iter().all(|m| m.measured));
        }
        assert_eq!(st.measured_requests(), 120);
        assert_eq!(st.total_requests(), 140);
    }

    #[test]
    fn tenants_are_partitioned_round_robin() {
        let spec = tiny_spec(); // 5 tenants on 2 cores
        let st = generate_service(&spec);
        for (core, metas) in st.requests.iter().enumerate() {
            assert!(metas
                .iter()
                .all(|m| m.tenant as usize % spec.cores == core));
        }
        // Every tenant actually receives traffic.
        let mut seen = vec![false; spec.tenants];
        for m in st.requests.iter().flatten() {
            seen[m.tenant as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all tenants hit: {seen:?}");
    }

    #[test]
    fn deterministic_across_runs_and_seed_sensitive() {
        let spec = tiny_spec();
        let a = generate_service(&spec);
        let b = generate_service(&spec);
        assert_eq!(a.trace.cores, b.trace.cores);
        assert_eq!(a.requests, b.requests);
        let mut other = spec;
        other.seed = 1;
        let c = generate_service(&other);
        assert_ne!(a.trace.cores, c.trace.cores);
    }

    #[test]
    fn higher_load_compresses_arrivals() {
        let spec = tiny_spec();
        let slow = generate_service(&spec);
        let mut fast_spec = spec;
        fast_spec.mean_interarrival_cycles = spec.mean_interarrival_cycles / 10.0;
        let fast = generate_service(&fast_spec);
        let last = |st: &ServiceTrace| {
            st.requests
                .iter()
                .map(|m| m.last().expect("nonempty").arrival)
                .max()
                .expect("cores")
        };
        assert!(last(&fast) < last(&slow));
    }

    #[test]
    fn mix_controls_mutation_share() {
        let mut spec = tiny_spec();
        spec.mix = MixKind::B; // read-heavy → few commits
        let read_heavy = generate_service(&spec);
        spec.mix = MixKind::A;
        let update_heavy = generate_service(&spec);
        assert!(read_heavy.trace.total_txs() < update_heavy.trace.total_txs());
        // F does RMW: more reads than A at the same commit rate.
        spec.mix = MixKind::F;
        let rmw = generate_service(&spec);
        assert_eq!(rmw.trace.total_txs(), update_heavy.trace.total_txs());
    }

    #[test]
    fn offered_load_helper() {
        let mut s = ServiceSpec::default_spec();
        s.cores = 4;
        s.mean_interarrival_cycles = 4000.0;
        assert!((s.offered_per_mcycle() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn run_closed_commits_mutating_requests() {
        let mut rt = TxRuntime::new(0x4000_0000);
        let mut rng = DetRng::seed_from(5);
        run_closed(&mut rt, &mut rng, 64, 1000, 64, 512);
        // YCSB-A over a full 1000-slot frame: exactly half mutate.
        assert_eq!(rt.stats().txs, 500);
        assert!(rt.stats().stores > 0);
    }
}
