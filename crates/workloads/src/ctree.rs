//! A persistent crit-bit tree (WHISPER's `ctree` workload).
//!
//! A binary radix tree over 64-bit keys: internal nodes test a single bit
//! and have exactly two children; leaves carry the key and a value
//! pointer. Insertion splices one fresh internal node into the path and
//! rewrites exactly one existing pointer (undo-logged), so each
//! transaction's structural write set is tiny and highly concentrated
//! near the root — the strongest temporal-locality workload of the suite.
//!
//! Pointers use a tag bit (LSB set = leaf) — all allocations are 16-byte
//! aligned so the bit is free.
//!
//! Layouts: internal node (24 B) `bit (u64) | child0 | child1`;
//! leaf (16 B) `key | value ptr`.

use crate::runtime::TxRuntime;
use thoth_sim_engine::DetRng;

const NIL: u64 = 0;
const LEAF_TAG: u64 = 1;

fn is_leaf(ptr: u64) -> bool {
    ptr & LEAF_TAG != 0
}
fn leaf_addr(ptr: u64) -> u64 {
    ptr & !LEAF_TAG
}

/// A persistent crit-bit tree.
#[derive(Debug)]
pub struct CritBitTree {
    /// Tagged root pointer (0 = empty).
    root: u64,
    /// Heap location holding the persistent root pointer.
    root_cell: u64,
    len: usize,
    value_size: usize,
}

impl CritBitTree {
    /// Creates an empty tree inside an open transaction.
    pub fn create(rt: &mut TxRuntime, value_size: usize) -> Self {
        let root_cell = rt.alloc(8);
        rt.write_new_u64(root_cell, NIL);
        CritBitTree {
            root: NIL,
            root_cell,
            len: 0,
            value_size,
        }
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn write_value(&self, rt: &mut TxRuntime, fill: u64) -> u64 {
        let blob = rt.alloc(self.value_size as u64);
        let bytes: Vec<u8> = (0..self.value_size)
            .map(|i| (fill as u8).wrapping_add(i as u8))
            .collect();
        rt.write_new(blob, &bytes);
        blob
    }

    fn new_leaf(&self, rt: &mut TxRuntime, key: u64, fill: u64) -> u64 {
        let blob = self.write_value(rt, fill);
        let leaf = rt.alloc(16);
        let mut img = [0u8; 16];
        img[..8].copy_from_slice(&key.to_le_bytes());
        img[8..].copy_from_slice(&blob.to_le_bytes());
        rt.write_new(leaf, &img);
        leaf | LEAF_TAG
    }

    /// Walks to the leaf that `key` would reach.
    fn descend(rt: &mut TxRuntime, mut ptr: u64, key: u64) -> u64 {
        while !is_leaf(ptr) {
            let bit = rt.read_u64(ptr);
            let side = (key >> bit) & 1;
            ptr = rt.read_u64(ptr + 8 + side * 8);
        }
        ptr
    }

    /// Inserts or copy-on-write-updates `key`. Must run in a transaction.
    pub fn insert(&mut self, rt: &mut TxRuntime, key: u64, fill: u64) {
        if self.root == NIL {
            let leaf = self.new_leaf(rt, key, fill);
            rt.write_u64(self.root_cell, leaf);
            self.root = leaf;
            self.len += 1;
            return;
        }
        // Find the best-match leaf and the critical bit.
        let best = Self::descend(rt, self.root, key);
        let best_key = rt.read_u64(leaf_addr(best));
        if best_key == key {
            let blob = self.write_value(rt, fill);
            rt.write_u64(leaf_addr(best) + 8, blob); // CoW pointer swing
            return;
        }
        let crit = 63 - u64::from((best_key ^ key).leading_zeros());
        let new_leaf = self.new_leaf(rt, key, fill);

        // Splice a fresh internal node where the path first decides below
        // the critical bit: walk from the root while nodes test higher bits.
        let mut parent_slot: Option<u64> = None; // heap addr of pointer to rewrite
        let mut ptr = self.root;
        while !is_leaf(ptr) {
            let bit = rt.read_u64(ptr);
            if bit < crit {
                break;
            }
            let side = (key >> bit) & 1;
            parent_slot = Some(ptr + 8 + side * 8);
            ptr = rt.read_u64(ptr + 8 + side * 8);
        }

        let node = rt.alloc(24);
        let side_of_new = (key >> crit) & 1;
        let mut img = [0u8; 24];
        img[..8].copy_from_slice(&crit.to_le_bytes());
        let (c0, c1) = if side_of_new == 0 {
            (new_leaf, ptr)
        } else {
            (ptr, new_leaf)
        };
        img[8..16].copy_from_slice(&c0.to_le_bytes());
        img[16..24].copy_from_slice(&c1.to_le_bytes());
        rt.write_new(node, &img);

        match parent_slot {
            Some(slot) => rt.write_u64(slot, node), // logged single-pointer splice
            None => {
                rt.write_u64(self.root_cell, node);
                self.root = node;
            }
        }
        self.len += 1;
    }

    /// Removes `key`: the leaf's parent internal node is spliced out by
    /// pointing the grandparent slot at the sibling (one logged pointer
    /// store), the exact inverse of insertion. Returns `true` if present.
    /// Must run inside a transaction.
    pub fn delete(&mut self, rt: &mut TxRuntime, key: u64) -> bool {
        if self.root == NIL {
            return false;
        }
        if is_leaf(self.root) {
            if rt.read_u64(leaf_addr(self.root)) != key {
                return false;
            }
            rt.write_u64(self.root_cell, NIL);
            self.root = NIL;
            self.len -= 1;
            return true;
        }
        // Walk remembering the grandparent slot and the parent node.
        let mut gp_slot: Option<u64> = None;
        let mut parent = self.root;
        loop {
            let bit = rt.read_u64(parent);
            let side = (key >> bit) & 1;
            let child = rt.read_u64(parent + 8 + side * 8);
            if is_leaf(child) {
                if rt.read_u64(leaf_addr(child)) != key {
                    return false;
                }
                let sibling = rt.read_u64(parent + 8 + (1 - side) * 8);
                match gp_slot {
                    Some(slot) => rt.write_u64(slot, sibling),
                    None => {
                        rt.write_u64(self.root_cell, sibling);
                        self.root = sibling;
                    }
                }
                self.len -= 1;
                return true;
            }
            gp_slot = Some(parent + 8 + side * 8);
            parent = child;
        }
    }

    /// Looks up `key`, returning its value-blob address.
    pub fn lookup(&self, rt: &mut TxRuntime, key: u64) -> Option<u64> {
        if self.root == NIL {
            return None;
        }
        let leaf = Self::descend(rt, self.root, key);
        let k = rt.read_u64(leaf_addr(leaf));
        (k == key).then(|| rt.read_u64(leaf_addr(leaf) + 8))
    }

    /// All keys, in ascending order (verification helper).
    pub fn keys_in_order(&self, rt: &mut TxRuntime) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        if self.root != NIL {
            self.walk(rt, self.root, &mut out);
        }
        out
    }

    fn walk(&self, rt: &mut TxRuntime, ptr: u64, out: &mut Vec<u64>) {
        if is_leaf(ptr) {
            out.push(rt.read_u64(leaf_addr(ptr)));
            return;
        }
        let c0 = rt.read_u64(ptr + 8);
        let c1 = rt.read_u64(ptr + 16);
        self.walk(rt, c0, out);
        self.walk(rt, c1, out);
    }
}

/// Runs the ctree workload: untraced pre-population of `prepopulate`
/// keys, then per traced transaction one lookup plus one insert/update of
/// a `tx_size`-byte value.
pub fn run(
    rt: &mut TxRuntime,
    rng: &mut DetRng,
    prepopulate: usize,
    txs: usize,
    tx_size: usize,
    keyspace: u64,
    delete_per_mille: u16,
) {
    rt.set_tracing(false);
    rt.begin();
    let mut tree = CritBitTree::create(rt, tx_size);
    rt.commit();
    for _ in 0..prepopulate {
        rt.begin();
        tree.insert(rt, rng.gen_range(keyspace), 0);
        rt.commit();
    }
    rt.set_tracing(true);
    for n in 0..txs {
        let key = rng.gen_range(keyspace);
        let probe = rng.gen_range(keyspace);
        rt.begin();
        let _ = tree.lookup(rt, probe);
        // Mixed mutation: a delete-flavoured transaction removes the key
        // if present, otherwise falls back to inserting it (so every
        // transaction mutates and the structure size stays balanced).
        let deleting =
            delete_per_mille > 0 && rng.gen_range(1000) < u64::from(delete_per_mille);
        if !(deleting && tree.delete(rt, key)) {
            tree.insert(rt, key, n as u64);
        }
        rt.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (TxRuntime, CritBitTree) {
        let mut rt = TxRuntime::new(0x400_0000);
        rt.begin();
        let tree = CritBitTree::create(&mut rt, 32);
        rt.commit();
        (rt, tree)
    }

    #[test]
    fn insert_and_lookup() {
        let (mut rt, mut t) = fresh();
        rt.begin();
        for k in [0u64, 1, 2, 255, 256, u64::MAX, 0x8000_0000_0000_0000] {
            t.insert(&mut rt, k, k);
        }
        rt.commit();
        for k in [0u64, 1, 2, 255, 256, u64::MAX, 0x8000_0000_0000_0000] {
            assert!(t.lookup(&mut rt, k).is_some(), "key {k:#x}");
        }
        assert!(t.lookup(&mut rt, 3).is_none());
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn keys_ascend_in_order_traversal() {
        let (mut rt, mut t) = fresh();
        let mut rng = DetRng::seed_from(5);
        let mut keys = std::collections::BTreeSet::new();
        rt.begin();
        for _ in 0..300 {
            let k = rng.next_u64();
            keys.insert(k);
            t.insert(&mut rt, k, 0);
        }
        rt.commit();
        assert_eq!(t.keys_in_order(&mut rt), keys.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn update_is_copy_on_write() {
        let (mut rt, mut t) = fresh();
        rt.begin();
        t.insert(&mut rt, 77, 1);
        rt.commit();
        let v1 = t.lookup(&mut rt, 77).unwrap();
        rt.begin();
        t.insert(&mut rt, 77, 2);
        rt.commit();
        let v2 = t.lookup(&mut rt, 77).unwrap();
        assert_ne!(v1, v2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dense_sequential_keys() {
        let (mut rt, mut t) = fresh();
        rt.begin();
        for k in 0..200u64 {
            t.insert(&mut rt, k, k);
        }
        rt.commit();
        assert_eq!(t.keys_in_order(&mut rt), (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn delete_splices_out_and_reinserts() {
        let (mut rt, mut t) = fresh();
        let keys: Vec<u64> = vec![0b0000, 0b0001, 0b0100, 0b1100, 0b1111];
        rt.begin();
        for &k in &keys {
            t.insert(&mut rt, k, k);
        }
        assert!(t.delete(&mut rt, 0b0100));
        assert!(!t.delete(&mut rt, 0b0100));
        assert!(!t.delete(&mut rt, 0b0111), "never inserted");
        rt.commit();
        assert!(t.lookup(&mut rt, 0b0100).is_none());
        assert_eq!(t.len(), 4);
        let mut expect: Vec<u64> = keys.iter().copied().filter(|&k| k != 0b0100).collect();
        expect.sort_unstable();
        assert_eq!(t.keys_in_order(&mut rt), expect);
        rt.begin();
        t.insert(&mut rt, 0b0100, 9);
        rt.commit();
        assert!(t.lookup(&mut rt, 0b0100).is_some());
    }

    #[test]
    fn delete_down_to_empty_and_regrow() {
        let (mut rt, mut t) = fresh();
        rt.begin();
        for k in 0..20u64 {
            t.insert(&mut rt, k, k);
        }
        for k in 0..20u64 {
            assert!(t.delete(&mut rt, k), "key {k}");
        }
        rt.commit();
        assert!(t.is_empty());
        assert!(t.lookup(&mut rt, 3).is_none());
        rt.begin();
        t.insert(&mut rt, 7, 7);
        rt.commit();
        assert_eq!(t.keys_in_order(&mut rt), vec![7]);
    }

    #[test]
    fn splice_rewrites_single_pointer() {
        let (mut rt, mut t) = fresh();
        rt.begin();
        t.insert(&mut rt, 0b0000, 0);
        t.insert(&mut rt, 0b1000, 0);
        rt.commit();
        let before = rt.stats().stores;
        rt.begin();
        t.insert(&mut rt, 0b1100, 0); // splices under the bit-3 node
        rt.commit();
        let stores = rt.stats().stores - before;
        // value blob + leaf + internal node + 1 logged pointer (log+data)
        // + commit record = 6 stores.
        assert_eq!(stores, 6);
    }

    #[test]
    fn run_commits_all() {
        let mut rt = TxRuntime::new(0);
        let mut rng = DetRng::seed_from(2);
        run(&mut rt, &mut rng, 10, 25, 64, 100, 0);
        assert_eq!(rt.stats().txs, 25);
    }
}
