//! A persistent chained hash table (WHISPER's `hashmap` workload).
//!
//! A fixed bucket array of head pointers plus chained entry records.
//! Inserts prepend to the chain (one fresh entry write + one undo-logged
//! bucket-head update); updates are copy-on-write pointer swings. The
//! bucket array gives this workload the most *spatially uniform* store
//! pattern of the suite — bucket-head updates scatter across the array,
//! touching many distinct counter/MAC blocks.
//!
//! Entry layout (24 bytes): `key (u64) | value ptr (u64) | next (u64)`.

use crate::runtime::TxRuntime;
use thoth_sim_engine::DetRng;

const ENTRY_BYTES: u64 = 24;
const NIL: u64 = 0;

/// A persistent chained hash map.
#[derive(Debug)]
pub struct HashMapPm {
    buckets: u64,
    num_buckets: u64,
    len: usize,
    value_size: usize,
}

fn hash(key: u64) -> u64 {
    // Fibonacci hashing: cheap and well distributed for our key streams.
    key.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl HashMapPm {
    /// Creates a table with `num_buckets` buckets inside an open
    /// transaction; values are `value_size`-byte blobs.
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is zero.
    pub fn create(rt: &mut TxRuntime, num_buckets: u64, value_size: usize) -> Self {
        assert!(num_buckets > 0, "hash table needs at least one bucket");
        let buckets = rt.alloc(num_buckets * 8);
        // The bucket array starts zeroed (heap semantics); a real system
        // would persist the zeroing, which we charge as one streaming
        // write of the array region.
        rt.write_new(buckets, &vec![0u8; (num_buckets * 8) as usize]);
        HashMapPm {
            buckets,
            num_buckets,
            len: 0,
            value_size,
        }
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_addr(&self, key: u64) -> u64 {
        self.buckets + (hash(key) % self.num_buckets) * 8
    }

    fn write_value(&self, rt: &mut TxRuntime, fill: u64) -> u64 {
        let blob = rt.alloc(self.value_size as u64);
        let bytes: Vec<u8> = (0..self.value_size)
            .map(|i| (fill as u8).wrapping_add(i as u8))
            .collect();
        rt.write_new(blob, &bytes);
        blob
    }

    /// Inserts or copy-on-write-updates `key`. Must run in a transaction.
    pub fn insert(&mut self, rt: &mut TxRuntime, key: u64, fill: u64) {
        let bucket = self.bucket_addr(key);
        // Chain walk (traced reads).
        let mut cur = rt.read_u64(bucket);
        while cur != NIL {
            let k = rt.read_u64(cur);
            if k == key {
                let blob = self.write_value(rt, fill);
                rt.write_u64(cur + 8, blob); // logged pointer swing
                return;
            }
            cur = rt.read_u64(cur + 16);
        }
        // Prepend a fresh entry.
        let head = rt.read_u64(bucket);
        let entry = rt.alloc(ENTRY_BYTES);
        let blob = self.write_value(rt, fill);
        let mut img = [0u8; 24];
        img[0..8].copy_from_slice(&key.to_le_bytes());
        img[8..16].copy_from_slice(&blob.to_le_bytes());
        img[16..24].copy_from_slice(&head.to_le_bytes());
        rt.write_new(entry, &img);
        rt.write_u64(bucket, entry); // logged bucket-head update
        self.len += 1;
    }

    /// Unlinks `key` from its chain (one logged pointer store). Returns
    /// `true` if the key was present. Must run inside a transaction.
    pub fn delete(&mut self, rt: &mut TxRuntime, key: u64) -> bool {
        let bucket = self.bucket_addr(key);
        let mut prev_slot = bucket; // heap cell holding the pointer to cur
        let mut cur = rt.read_u64(bucket);
        while cur != NIL {
            if rt.read_u64(cur) == key {
                let next = rt.read_u64(cur + 16);
                rt.write_u64(prev_slot, next);
                self.len -= 1;
                return true;
            }
            prev_slot = cur + 16;
            cur = rt.read_u64(cur + 16);
        }
        false
    }

    /// Looks up `key`, returning its value-blob address.
    pub fn lookup(&self, rt: &mut TxRuntime, key: u64) -> Option<u64> {
        let mut cur = rt.read_u64(self.bucket_addr(key));
        while cur != NIL {
            if rt.read_u64(cur) == key {
                return Some(rt.read_u64(cur + 8));
            }
            cur = rt.read_u64(cur + 16);
        }
        None
    }
}

/// Runs the hashmap workload: untraced pre-population of `prepopulate`
/// keys, then per traced transaction one lookup plus one insert/update of
/// a `tx_size`-byte value.
pub fn run(
    rt: &mut TxRuntime,
    rng: &mut DetRng,
    prepopulate: usize,
    txs: usize,
    tx_size: usize,
    keyspace: u64,
    delete_per_mille: u16,
) {
    rt.set_tracing(false);
    rt.begin();
    let mut map = HashMapPm::create(rt, (keyspace / 2).max(16), tx_size);
    rt.commit();
    for _ in 0..prepopulate {
        rt.begin();
        map.insert(rt, rng.gen_range(keyspace), 0);
        rt.commit();
    }
    rt.set_tracing(true);
    for n in 0..txs {
        let key = rng.gen_range(keyspace);
        let probe = rng.gen_range(keyspace);
        rt.begin();
        let _ = map.lookup(rt, probe);
        // Mixed mutation: a delete-flavoured transaction removes the key
        // if present, otherwise falls back to inserting it (so every
        // transaction mutates and the structure size stays balanced).
        let deleting =
            delete_per_mille > 0 && rng.gen_range(1000) < u64::from(delete_per_mille);
        if !(deleting && map.delete(rt, key)) {
            map.insert(rt, key, n as u64);
        }
        rt.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(buckets: u64) -> (TxRuntime, HashMapPm) {
        let mut rt = TxRuntime::new(0x300_0000);
        rt.begin();
        let map = HashMapPm::create(&mut rt, buckets, 32);
        rt.commit();
        (rt, map)
    }

    #[test]
    fn insert_and_lookup() {
        let (mut rt, mut map) = fresh(64);
        rt.begin();
        for k in 0..100u64 {
            map.insert(&mut rt, k * 3, k);
        }
        rt.commit();
        assert_eq!(map.len(), 100);
        for k in 0..100u64 {
            assert!(map.lookup(&mut rt, k * 3).is_some());
        }
        assert!(map.lookup(&mut rt, 1).is_none());
    }

    #[test]
    fn chains_survive_collisions() {
        // One bucket: everything chains.
        let (mut rt, mut map) = fresh(1);
        rt.begin();
        for k in 0..50u64 {
            map.insert(&mut rt, k, k);
        }
        rt.commit();
        for k in 0..50u64 {
            assert!(map.lookup(&mut rt, k).is_some(), "key {k}");
        }
        assert_eq!(map.len(), 50);
    }

    #[test]
    fn update_is_copy_on_write() {
        let (mut rt, mut map) = fresh(16);
        rt.begin();
        map.insert(&mut rt, 9, 1);
        rt.commit();
        let v1 = map.lookup(&mut rt, 9).unwrap();
        rt.begin();
        map.insert(&mut rt, 9, 2);
        rt.commit();
        let v2 = map.lookup(&mut rt, 9).unwrap();
        assert_ne!(v1, v2);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn delete_unlinks_anywhere_in_chain() {
        // Single bucket so the chain is deep and position-dependent.
        let (mut rt, mut map) = fresh(1);
        rt.begin();
        for k in 0..10u64 {
            map.insert(&mut rt, k, k);
        }
        // Head (last inserted), middle, tail (first inserted), missing.
        for (k, expect) in [(9u64, true), (4, true), (0, true), (99, false)] {
            assert_eq!(map.delete(&mut rt, k), expect, "key {k}");
        }
        rt.commit();
        assert_eq!(map.len(), 7);
        for k in 0..10u64 {
            let gone = [9, 4, 0].contains(&k);
            assert_eq!(map.lookup(&mut rt, k).is_none(), gone, "key {k}");
        }
        // Reinsert a deleted key.
        rt.begin();
        map.insert(&mut rt, 4, 1);
        rt.commit();
        assert!(map.lookup(&mut rt, 4).is_some());
        assert_eq!(map.len(), 8);
    }

    #[test]
    fn value_bytes_match_fill() {
        let (mut rt, mut map) = fresh(16);
        rt.begin();
        map.insert(&mut rt, 1, 0x10);
        rt.commit();
        let blob = map.lookup(&mut rt, 1).unwrap();
        assert_eq!(rt.heap().read(blob, 2), [0x10, 0x11]);
    }

    #[test]
    fn run_commits_all() {
        let mut rt = TxRuntime::new(0);
        let mut rng = DetRng::seed_from(11);
        run(&mut rt, &mut rng, 10, 30, 128, 200, 0);
        assert_eq!(rt.stats().txs, 30);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let mut rt = TxRuntime::new(0);
        rt.begin();
        let _ = HashMapPm::create(&mut rt, 0, 8);
    }
}
