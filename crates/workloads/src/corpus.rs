//! Seeded-bug corpus: deterministic broken variants of the workload
//! traces for the persistency sanitizer (`thoth-psan`) to catch.
//!
//! Each [`SeededBug`] takes an annotated clean trace and plants exactly
//! one persistency bug at a deterministically chosen site:
//!
//! * [`SeededBug::DroppedFlush`] — an in-place data store is demoted to a
//!   relaxed store whose write-back never happens: the transaction
//!   commits with no durable-ordering edge for that block (a durability
//!   bug — the classic missing `clwb`).
//! * [`SeededBug::SwappedLogData`] — an undo-log append and the in-place
//!   update it guards change places: the data becomes durable before its
//!   old value does, so a crash between them is unrecoverable (an
//!   ordering violation — write-ahead logging inverted).
//! * [`SeededBug::DoubleFlush`] — a redundant flush of a block the
//!   preceding store already persisted (a performance smell — the
//!   back-to-back `clwb` anti-pattern).
//!
//! The mutation site is recorded as a [`BugSite`] so the sanitizer's
//! attribution (core, op index, address) can be checked exactly.

use crate::runtime::{AnnotatedTrace, MultiCoreTrace, OpClass, TraceOp};
use thoth_sim_engine::DetRng;

/// One plantable persistency bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeededBug {
    /// Demote a data store to a relaxed store with no flush (durability).
    DroppedFlush,
    /// Swap an undo-log append with the update it guards (ordering).
    SwappedLogData,
    /// Insert a flush of an already-persisted block (performance smell).
    DoubleFlush,
}

impl SeededBug {
    /// Every bug kind, in a fixed order.
    pub const ALL: [SeededBug; 3] = [
        SeededBug::DroppedFlush,
        SeededBug::SwappedLogData,
        SeededBug::DoubleFlush,
    ];

    /// Stable lowercase name (reports, JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SeededBug::DroppedFlush => "dropped-flush",
            SeededBug::SwappedLogData => "swapped-log-data",
            SeededBug::DoubleFlush => "double-flush",
        }
    }

    /// Parses a [`Self::name`] back.
    #[must_use]
    pub fn from_name(name: &str) -> Option<SeededBug> {
        SeededBug::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Per-kind salt so different bugs pick independent sites.
    fn salt(self) -> u64 {
        match self {
            SeededBug::DroppedFlush => 0xD90F_F1A5,
            SeededBug::SwappedLogData => 0x5A99_ED10,
            SeededBug::DoubleFlush => 0xD0B1_EF15,
        }
    }
}

impl std::fmt::Display for SeededBug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a bug was planted — the exact site the sanitizer must attribute
/// its finding to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BugSite {
    /// Core whose op stream was mutated.
    pub core: usize,
    /// Index (into the mutated stream) of the op the finding must name.
    pub op: usize,
    /// Target address of the mutated/inserted op.
    pub addr: u64,
}

/// A broken trace variant plus its ground truth.
#[derive(Debug, Clone)]
pub struct SeededVariant {
    /// The planted bug.
    pub bug: SeededBug,
    /// Ground-truth site of the expected finding.
    pub site: BugSite,
    /// The mutated trace.
    pub trace: MultiCoreTrace,
    /// Per-core, per-op semantic classes, mutated in lock-step with the
    /// trace (the dropped-flush victim keeps its `DataInPlace` class —
    /// the *intent* of the op is unchanged, only its durability is).
    pub classes: Vec<Vec<OpClass>>,
}

/// Block-aligned indices spanned by `[addr, addr+len)`.
fn blocks_spanned(addr: u64, len: u32, block_bytes: u64) -> (u64, u64) {
    let first = addr / block_bytes;
    let last = (addr + u64::from(len).max(1) - 1) / block_bytes;
    (first, last)
}

fn spans_intersect(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

/// Transaction ranges `[start, commit_index]` of one core's op stream.
fn tx_ranges(ops: &[TraceOp]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, op) in ops.iter().enumerate() {
        if matches!(op, TraceOp::Commit) {
            out.push((start, i));
            start = i + 1;
        }
    }
    out
}

/// Plants `bug` into a deterministically (by `seed`) chosen eligible site
/// of `annotated`. Returns `None` if the trace exposes no eligible site
/// (e.g. no in-place update whose blocks are private to it within its
/// transaction). `block_bytes` must match the simulator configuration the
/// variant will be replayed under — eligibility is block-granular.
#[must_use]
pub fn seed_bug(
    annotated: &AnnotatedTrace,
    bug: SeededBug,
    seed: u64,
    block_bytes: u64,
) -> Option<SeededVariant> {
    let sites = eligible_sites(annotated, bug, block_bytes);
    if sites.is_empty() {
        return None;
    }
    let mut rng = DetRng::seed_from(seed ^ bug.salt());
    let (core, op) = sites[rng.gen_index(sites.len())];
    let mut trace = annotated.trace.clone();
    let mut classes = annotated.classes.clone();
    let ops = &mut trace.cores[core];
    let cls = &mut classes[core];
    let site = match bug {
        SeededBug::DroppedFlush => {
            let TraceOp::Store { addr, len } = ops[op] else {
                unreachable!("eligible site is a store");
            };
            ops[op] = TraceOp::StoreRelaxed { addr, len };
            BugSite { core, op, addr }
        }
        SeededBug::SwappedLogData => {
            ops.swap(op, op + 1);
            cls.swap(op, op + 1);
            let TraceOp::Store { addr, .. } = ops[op] else {
                unreachable!("swapped-in data op is a store");
            };
            BugSite { core, op, addr }
        }
        SeededBug::DoubleFlush => {
            let TraceOp::Store { addr, len } = ops[op] else {
                unreachable!("eligible site is a store");
            };
            ops.insert(op + 1, TraceOp::Flush { addr, len });
            cls.insert(op + 1, OpClass::Flush);
            BugSite { core, op: op + 1, addr }
        }
    };
    Some(SeededVariant {
        bug,
        site,
        trace,
        classes,
    })
}

/// `(core, op)` sites where `bug` can be planted with an unambiguous
/// expected finding.
fn eligible_sites(
    annotated: &AnnotatedTrace,
    bug: SeededBug,
    block_bytes: u64,
) -> Vec<(usize, usize)> {
    let mut sites = Vec::new();
    for (core, (ops, classes)) in annotated
        .trace
        .cores
        .iter()
        .zip(&annotated.classes)
        .enumerate()
    {
        match bug {
            SeededBug::DroppedFlush => {
                // A data store (in-place or fresh — both must be durable
                // by commit) whose blocks no other store or flush of the
                // same transaction touches — otherwise that other access
                // would persist the victim's block as a side effect (same
                // cache line) and mask the bug.
                for &(start, end) in &tx_ranges(ops) {
                    for i in start..end {
                        if !matches!(classes[i], OpClass::DataInPlace | OpClass::DataFresh) {
                            continue;
                        }
                        let TraceOp::Store { addr, len } = ops[i] else {
                            continue;
                        };
                        let span = blocks_spanned(addr, len, block_bytes);
                        let private = (start..=end).all(|j| {
                            if j == i {
                                return true;
                            }
                            match ops[j] {
                                TraceOp::Store { addr, len }
                                | TraceOp::StoreRelaxed { addr, len }
                                | TraceOp::Flush { addr, len } => !spans_intersect(
                                    span,
                                    blocks_spanned(addr, len, block_bytes),
                                ),
                                _ => true,
                            }
                        });
                        if private {
                            sites.push((core, i));
                        }
                    }
                }
            }
            SeededBug::SwappedLogData => {
                // A log append immediately followed by the in-place
                // update it guards (the runtime always emits them
                // adjacently).
                for i in 0..classes.len().saturating_sub(1) {
                    let OpClass::LogAppend {
                        guard_addr,
                        guard_len,
                    } = classes[i]
                    else {
                        continue;
                    };
                    if classes[i + 1] == OpClass::DataInPlace
                        && ops[i + 1]
                            == (TraceOp::Store {
                                addr: guard_addr,
                                len: guard_len,
                            })
                    {
                        sites.push((core, i));
                    }
                }
            }
            SeededBug::DoubleFlush => {
                for (i, class) in classes.iter().enumerate() {
                    if matches!(class, OpClass::DataInPlace | OpClass::DataFresh)
                        && matches!(ops[i], TraceOp::Store { .. })
                    {
                        sites.push((core, i));
                    }
                }
            }
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{self, WorkloadConfig, WorkloadKind};

    fn tiny_annotated(kind: WorkloadKind) -> AnnotatedTrace {
        let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.01);
        cfg.cores = 2;
        cfg.footprint = if kind == WorkloadKind::Swap { 32 } else { 2000 };
        cfg.prepopulate = cfg.footprint / 2;
        spec::generate_annotated(cfg)
    }

    #[test]
    fn classes_align_with_ops() {
        for kind in WorkloadKind::ALL {
            let a = tiny_annotated(kind);
            for (ops, classes) in a.trace.cores.iter().zip(&a.classes) {
                assert_eq!(ops.len(), classes.len(), "{kind}");
            }
        }
    }

    #[test]
    fn every_bug_seeds_into_every_workload() {
        for kind in WorkloadKind::ALL {
            let a = tiny_annotated(kind);
            for bug in SeededBug::ALL {
                // Swap is log-free by design (its writes are their own
                // inverse), so the log/data inversion has no site there.
                if kind == WorkloadKind::Swap && bug == SeededBug::SwappedLogData {
                    assert!(seed_bug(&a, bug, 7, 128).is_none());
                    continue;
                }
                let v = seed_bug(&a, bug, 7, 128)
                    .unwrap_or_else(|| panic!("{kind}: no eligible {bug} site"));
                assert_eq!(v.bug, bug);
                assert!(v.site.core < v.trace.cores.len());
                assert!(v.site.op < v.trace.cores[v.site.core].len());
                for (ops, classes) in v.trace.cores.iter().zip(&v.classes) {
                    assert_eq!(ops.len(), classes.len(), "{kind} {bug}: classes drifted");
                }
            }
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a = tiny_annotated(WorkloadKind::Btree);
        let v1 = seed_bug(&a, SeededBug::DroppedFlush, 7, 128).expect("site");
        let v2 = seed_bug(&a, SeededBug::DroppedFlush, 7, 128).expect("site");
        assert_eq!(v1.site, v2.site);
        assert_eq!(v1.trace.cores, v2.trace.cores);
        let sites: Vec<BugSite> = (0..16)
            .filter_map(|s| seed_bug(&a, SeededBug::DroppedFlush, s, 128))
            .map(|v| v.site)
            .collect();
        assert!(
            sites.iter().any(|s| *s != sites[0]),
            "different seeds should reach different sites"
        );
    }

    #[test]
    fn dropped_flush_demotes_exactly_one_store() {
        let a = tiny_annotated(WorkloadKind::Hashmap);
        let v = seed_bug(&a, SeededBug::DroppedFlush, 3, 128).expect("site");
        let relaxed: Vec<usize> = v.trace.cores[v.site.core]
            .iter()
            .enumerate()
            .filter_map(|(i, op)| matches!(op, TraceOp::StoreRelaxed { .. }).then_some(i))
            .collect();
        assert_eq!(relaxed, vec![v.site.op]);
        assert_eq!(
            v.trace.total_stores(),
            a.trace.total_stores(),
            "relaxed store still counts as a store"
        );
    }

    #[test]
    fn swapped_log_data_keeps_op_multiset() {
        let a = tiny_annotated(WorkloadKind::Ctree);
        let v = seed_bug(&a, SeededBug::SwappedLogData, 3, 128).expect("site");
        let ops = &v.trace.cores[v.site.core];
        // The data op now precedes its own log append.
        assert!(matches!(ops[v.site.op], TraceOp::Store { addr, .. } if addr == v.site.addr));
        let mut orig = a.trace.cores[v.site.core].clone();
        let mut mutated = ops.clone();
        orig.sort_by_key(|op| format!("{op:?}"));
        mutated.sort_by_key(|op| format!("{op:?}"));
        assert_eq!(orig, mutated, "swap must not add or drop ops");
    }

    #[test]
    fn double_flush_inserts_after_its_store() {
        let a = tiny_annotated(WorkloadKind::Swap);
        let v = seed_bug(&a, SeededBug::DoubleFlush, 3, 128).expect("site");
        let ops = &v.trace.cores[v.site.core];
        assert!(matches!(ops[v.site.op], TraceOp::Flush { addr, .. } if addr == v.site.addr));
        assert!(matches!(ops[v.site.op - 1], TraceOp::Store { addr, .. } if addr == v.site.addr));
        assert_eq!(ops.len(), a.trace.cores[v.site.core].len() + 1);
    }

    #[test]
    fn names_roundtrip() {
        for b in SeededBug::ALL {
            assert_eq!(SeededBug::from_name(b.name()), Some(b));
        }
        assert_eq!(SeededBug::from_name("nope"), None);
    }
}
