//! Seeded-bug corpus: deterministic broken variants of the workload
//! traces for the persistency sanitizer (`thoth-psan`) to catch.
//!
//! Each [`SeededBug`] takes an annotated clean trace and plants exactly
//! one persistency bug at a deterministically chosen site:
//!
//! * [`SeededBug::DroppedFlush`] — an in-place data store is demoted to a
//!   relaxed store whose write-back never happens: the transaction
//!   commits with no durable-ordering edge for that block (a durability
//!   bug — the classic missing `clwb`).
//! * [`SeededBug::SwappedLogData`] — an undo-log append and the in-place
//!   update it guards change places: the data becomes durable before its
//!   old value does, so a crash between them is unrecoverable (an
//!   ordering violation — write-ahead logging inverted).
//! * [`SeededBug::DoubleFlush`] — a redundant flush of a block the
//!   preceding store already persisted (a performance smell — the
//!   back-to-back `clwb` anti-pattern).
//!
//! Four cross-core race variants exercise the happens-before layer of
//! psan v2 ([`SeededBug::is_cross_core`]); they need a trace with at
//! least two cores:
//!
//! * [`SeededBug::UnfencedCounter`] — a second core updates the same
//!   hot block with no synchronizing drain between the two persists
//!   (a cross-core persist race: WPQ drain order decides recovery).
//! * [`SeededBug::SwappedDrainOrder`] — a second core persists two of
//!   the victim core's blocks in the *opposite* order, so the two
//!   cores disagree on which block reaches NVM first.
//! * [`SeededBug::RelaxedSteal`] — the victim's store is demoted to a
//!   relaxed store *and* a second core persists the same block: the
//!   owner's durability now hinges on a racing core's write-back
//!   (a fence-elision race).
//! * [`SeededBug::CoverOverlap`] — a second core raises a metadata
//!   cover for a block whose cover from the victim core is still
//!   live and unordered (a stale-cover overlap).
//!
//! The mutation site is recorded as a [`BugSite`] so the sanitizer's
//! attribution (core, op index, address) can be checked exactly.

use crate::runtime::{AnnotatedTrace, MultiCoreTrace, OpClass, TraceOp};
use thoth_sim_engine::DetRng;

/// One plantable persistency bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeededBug {
    /// Demote a data store to a relaxed store with no flush (durability).
    DroppedFlush,
    /// Swap an undo-log append with the update it guards (ordering).
    SwappedLogData,
    /// Insert a flush of an already-persisted block (performance smell).
    DoubleFlush,
    /// A second core updates the same block with no ordering drain
    /// between the persists (cross-core race).
    UnfencedCounter,
    /// A second core persists two victim blocks in the opposite order
    /// (cross-core race on the later-drained block).
    SwappedDrainOrder,
    /// Demote the owner's store to relaxed and let a second core
    /// persist the block (fence elision).
    RelaxedSteal,
    /// A second core covers a block whose metadata cover from the
    /// victim core is still live (stale cover overlap).
    CoverOverlap,
}

impl SeededBug {
    /// Every bug kind, in a fixed order.
    pub const ALL: [SeededBug; 7] = [
        SeededBug::DroppedFlush,
        SeededBug::SwappedLogData,
        SeededBug::DoubleFlush,
        SeededBug::UnfencedCounter,
        SeededBug::SwappedDrainOrder,
        SeededBug::RelaxedSteal,
        SeededBug::CoverOverlap,
    ];

    /// The original single-core bugs (one finding class each, no
    /// happens-before reasoning needed).
    pub const CLASSIC: [SeededBug; 3] = [
        SeededBug::DroppedFlush,
        SeededBug::SwappedLogData,
        SeededBug::DoubleFlush,
    ];

    /// The cross-core race bugs psan v2's vector-clock layer catches.
    pub const RACES: [SeededBug; 4] = [
        SeededBug::UnfencedCounter,
        SeededBug::SwappedDrainOrder,
        SeededBug::RelaxedSteal,
        SeededBug::CoverOverlap,
    ];

    /// True for the bugs that plant a racing op on a second core.
    #[must_use]
    pub fn is_cross_core(self) -> bool {
        matches!(
            self,
            SeededBug::UnfencedCounter
                | SeededBug::SwappedDrainOrder
                | SeededBug::RelaxedSteal
                | SeededBug::CoverOverlap
        )
    }

    /// Stable lowercase name (reports, JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SeededBug::DroppedFlush => "dropped-flush",
            SeededBug::SwappedLogData => "swapped-log-data",
            SeededBug::DoubleFlush => "double-flush",
            SeededBug::UnfencedCounter => "unfenced-counter",
            SeededBug::SwappedDrainOrder => "swapped-drain-order",
            SeededBug::RelaxedSteal => "relaxed-steal",
            SeededBug::CoverOverlap => "cover-overlap",
        }
    }

    /// Parses a [`Self::name`] back.
    #[must_use]
    pub fn from_name(name: &str) -> Option<SeededBug> {
        SeededBug::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Per-kind salt so different bugs pick independent sites.
    fn salt(self) -> u64 {
        match self {
            SeededBug::DroppedFlush => 0xD90F_F1A5,
            SeededBug::SwappedLogData => 0x5A99_ED10,
            SeededBug::DoubleFlush => 0xD0B1_EF15,
            SeededBug::UnfencedCounter => 0x0FEC_C017,
            SeededBug::SwappedDrainOrder => 0x5DA1_0D07,
            SeededBug::RelaxedSteal => 0x7E1A_57EA,
            SeededBug::CoverOverlap => 0xC0FE_071A,
        }
    }
}

impl std::fmt::Display for SeededBug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Execution-order alignment for cross-core planting: for each core and
/// op index, the global sequence number of the op's first observable
/// persist event in a pilot run of the *clean* trace.
///
/// Op indices do not line up in time across cores (streams drift apart
/// as they run), so a racing op planted "at the same index" on a peer
/// core can land far outside the victim persist's WPQ residency window.
/// With an alignment table the corpus plants the racing op at the peer
/// position that executes closest to the victim op in simulated time.
///
/// The table is built by whoever can run the trace (the sanitizer
/// driver). Ops that emitted no events hold [`u64::MAX`]; entries with
/// events are non-decreasing along each row.
#[derive(Debug, Clone)]
pub struct RaceAlignment {
    /// `first_seq[core][op]` — see the type docs.
    pub first_seq: Vec<Vec<u64>>,
}

impl RaceAlignment {
    /// First-event sequence of `(core, op)`, or `u64::MAX` when the op
    /// produced no events.
    #[must_use]
    pub fn seq(&self, core: usize, op: usize) -> u64 {
        self.first_seq
            .get(core)
            .and_then(|row| row.get(op).copied())
            .unwrap_or(u64::MAX)
    }

    /// Index of the first op in `peer`'s stream whose own first event
    /// lands at or after global sequence `victim_seq` (ops without
    /// events are skipped — their position in global order is unknown).
    /// An op inserted at this index executes in the same event gap as
    /// `victim_seq`; inserted one slot later, it is guaranteed to
    /// execute after it.
    #[must_use]
    pub fn insert_index(&self, peer: usize, victim_seq: u64) -> usize {
        self.first_seq.get(peer).map_or(0, |row| {
            row.iter()
                .position(|&s| s != u64::MAX && s >= victim_seq)
                .unwrap_or(row.len())
        })
    }

    /// The insertion-slot bracket around `victim_seq` in `peer`'s
    /// stream: `(lo, hi)` where `lo` is the slot right after the last
    /// peer op observed *before* `victim_seq` and `hi` is
    /// [`Self::insert_index`]. Ops in `lo..hi` emitted no events; an op
    /// inserted anywhere in the bracket executes near `victim_seq`.
    #[must_use]
    pub fn gap(&self, peer: usize, victim_seq: u64) -> (usize, usize) {
        let hi = self.insert_index(peer, victim_seq);
        let lo = self.first_seq.get(peer).map_or(0, |row| {
            row.iter()
                .rposition(|&s| s != u64::MAX && s < victim_seq)
                .map_or(0, |q| q + 1)
        });
        (lo, hi)
    }
}

/// Where a bug was planted — the exact site the sanitizer must attribute
/// its finding to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BugSite {
    /// Core whose op stream was mutated.
    pub core: usize,
    /// Index (into the mutated stream) of the op the finding must name.
    pub op: usize,
    /// Target address of the mutated/inserted op.
    pub addr: u64,
}

/// A broken trace variant plus its ground truth.
#[derive(Debug, Clone)]
pub struct SeededVariant {
    /// The planted bug.
    pub bug: SeededBug,
    /// Ground-truth site of the expected finding.
    pub site: BugSite,
    /// The mutated trace.
    pub trace: MultiCoreTrace,
    /// Per-core, per-op semantic classes, mutated in lock-step with the
    /// trace (the dropped-flush victim keeps its `DataInPlace` class —
    /// the *intent* of the op is unchanged, only its durability is).
    pub classes: Vec<Vec<OpClass>>,
}

/// Block-aligned indices spanned by `[addr, addr+len)`.
fn blocks_spanned(addr: u64, len: u32, block_bytes: u64) -> (u64, u64) {
    let first = addr / block_bytes;
    let last = (addr + u64::from(len).max(1) - 1) / block_bytes;
    (first, last)
}

fn spans_intersect(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

/// Transaction ranges `[start, commit_index]` of one core's op stream.
fn tx_ranges(ops: &[TraceOp]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, op) in ops.iter().enumerate() {
        if matches!(op, TraceOp::Commit) {
            out.push((start, i));
            start = i + 1;
        }
    }
    out
}

/// Plants `bug` into a deterministically (by `seed`) chosen eligible site
/// of `annotated`. Returns `None` if the trace exposes no eligible site
/// (e.g. no in-place update whose blocks are private to it within its
/// transaction). `block_bytes` must match the simulator configuration the
/// variant will be replayed under — eligibility is block-granular.
#[must_use]
pub fn seed_bug(
    annotated: &AnnotatedTrace,
    bug: SeededBug,
    seed: u64,
    block_bytes: u64,
) -> Option<SeededVariant> {
    seed_bug_with(annotated, bug, seed, block_bytes, None)
}

/// [`seed_bug`] with an optional execution-order alignment table. The
/// cross-core bugs need one on real-scale traces: without it the racing
/// op is planted at `victim index + 1` on the peer core, which only
/// stays inside the victim persist's WPQ residency window while the
/// cores are still running in lock-step (early in the trace).
#[must_use]
pub fn seed_bug_with(
    annotated: &AnnotatedTrace,
    bug: SeededBug,
    seed: u64,
    block_bytes: u64,
    align: Option<&RaceAlignment>,
) -> Option<SeededVariant> {
    let sites = eligible_sites(annotated, bug, block_bytes);
    if sites.is_empty() {
        return None;
    }
    let mut rng = DetRng::seed_from(seed ^ bug.salt());
    let (core, op) = sites[rng.gen_index(sites.len())];
    let mut trace = annotated.trace.clone();
    let mut classes = annotated.classes.clone();
    // Cross-core bugs plant a small cluster of racing ops on the next
    // core, at slots bracketing the victim op's position in global
    // execution order (see [`thief_slots`]): at least one of them makes
    // contact with the victim persist's WPQ residency window however
    // far the two cores have drifted apart. The planted site is the
    // *victim* endpoint — the checker reports races at both endpoints,
    // and the victim one is stable no matter which racing op connects.
    let peer = (core + 1) % trace.cores.len();
    let site = match bug {
        SeededBug::DroppedFlush => {
            let ops = &mut trace.cores[core];
            let TraceOp::Store { addr, len } = ops[op] else {
                unreachable!("eligible site is a store");
            };
            ops[op] = TraceOp::StoreRelaxed { addr, len };
            BugSite { core, op, addr }
        }
        SeededBug::SwappedLogData => {
            trace.cores[core].swap(op, op + 1);
            classes[core].swap(op, op + 1);
            let TraceOp::Store { addr, .. } = trace.cores[core][op] else {
                unreachable!("swapped-in data op is a store");
            };
            BugSite { core, op, addr }
        }
        SeededBug::DoubleFlush => {
            let ops = &mut trace.cores[core];
            let TraceOp::Store { addr, len } = ops[op] else {
                unreachable!("eligible site is a store");
            };
            ops.insert(op + 1, TraceOp::Flush { addr, len });
            classes[core].insert(op + 1, OpClass::Flush);
            BugSite { core, op: op + 1, addr }
        }
        SeededBug::UnfencedCounter => {
            let TraceOp::Store { addr, len } = trace.cores[core][op] else {
                unreachable!("eligible site is a store");
            };
            for at in thief_slots(align, peer, trace.cores[peer].len(), core, op, false) {
                trace.cores[peer].insert(at, TraceOp::Store { addr, len });
                classes[peer].insert(at, OpClass::DataFresh);
            }
            BugSite { core, op, addr }
        }
        SeededBug::SwappedDrainOrder => {
            let TraceOp::Store { addr: a0, len: l0 } = trace.cores[core][op] else {
                unreachable!("eligible site is a store");
            };
            let (_, a1, l1) =
                drain_pair_partner(&trace.cores[core], &classes[core], op, block_bytes)
                    .expect("eligible site has a partner store");
            // The peer persists the victim's *later* block first: the
            // two cores now disagree on the drain order of the pair.
            for at in thief_slots(align, peer, trace.cores[peer].len(), core, op, false) {
                trace.cores[peer].insert(at, TraceOp::Store { addr: a0, len: l0 });
                classes[peer].insert(at, OpClass::DataFresh);
                trace.cores[peer].insert(at, TraceOp::Store { addr: a1, len: l1 });
                classes[peer].insert(at, OpClass::DataFresh);
            }
            BugSite { core, op, addr: a0 }
        }
        SeededBug::RelaxedSteal => {
            let TraceOp::Store { addr, len } = trace.cores[core][op] else {
                unreachable!("eligible site is a store");
            };
            trace.cores[core][op] = TraceOp::StoreRelaxed { addr, len };
            // Stealing only works inside the (relaxed store, commit)
            // window — at commit the owner's durability verdict is
            // sealed — so the thieves go after peer ops observed to
            // execute strictly inside that window.
            let commit = tx_ranges(&trace.cores[core])
                .into_iter()
                .find(|&(s, e)| (s..e).contains(&op))
                .map(|(_, e)| e);
            for at in steal_slots(align, peer, trace.cores[peer].len(), core, op, commit) {
                trace.cores[peer].insert(at, TraceOp::Store { addr, len });
                classes[peer].insert(at, OpClass::DataFresh);
            }
            // Stretch the window: cold reads (long-retired undo-log
            // blocks, certain cache misses) right after the relaxed
            // store hold the owner's transaction open for several miss
            // latencies so a thief can land inside it.
            for pad in steal_padding(&trace.cores[core], &classes[core], op, block_bytes) {
                trace.cores[core].insert(op + 1, TraceOp::Read { addr: pad, len: 8 });
                classes[core].insert(op + 1, OpClass::Read);
            }
            BugSite { core, op, addr }
        }
        SeededBug::CoverOverlap => {
            let TraceOp::Store { addr, len } = trace.cores[core][op] else {
                unreachable!("eligible site is a store");
            };
            let (_, last) = blocks_spanned(addr, len, block_bytes);
            let target = last * block_bytes;
            for at in thief_slots(align, peer, trace.cores[peer].len(), core, op, false) {
                trace.cores[peer].insert(at, TraceOp::Store { addr: target, len: 8 });
                classes[peer].insert(at, OpClass::DataFresh);
            }
            BugSite { core, op, addr: target }
        }
    };
    Some(SeededVariant {
        bug,
        site,
        trace,
        classes,
    })
}

/// Peer-stream slots for a cluster of racing ops bracketing the victim
/// op `(core, op)` in global execution order: the event gap the victim
/// executes in, the slot right after the first peer op known to follow
/// it, and one more a peer op later. Planting a copy of the racing op
/// at every slot guarantees contact with the victim persist's WPQ
/// residency window however far the cores have drifted apart and
/// however the mutation itself perturbs timing. `after_only` drops the
/// in-gap slot for bugs whose racing op must execute strictly after
/// the victim op (it trades the slot for one further out instead).
///
/// Slots are clamped to `peer_len`, deduplicated, and returned in
/// *descending* order so that inserting at each in turn leaves the
/// later (already-used) indices unshifted.
fn thief_slots(
    align: Option<&RaceAlignment>,
    peer: usize,
    peer_len: usize,
    core: usize,
    op: usize,
    after_only: bool,
) -> Vec<usize> {
    let slots = match align {
        Some(al) if al.seq(core, op) != u64::MAX => {
            let (lo, hi) = al.gap(peer, al.seq(core, op));
            if after_only {
                vec![hi, hi + 1, hi + 2]
            } else {
                vec![lo, hi, hi + 1]
            }
        }
        // No table: assume lock-step and plant around the same index.
        _ => vec![op + 1, op + 2, op + 3],
    };
    finish_slots(slots, peer_len)
}

/// Thief slots for [`SeededBug::RelaxedSteal`]: the steal only counts
/// while the owner's relaxed store is dirty and its transaction still
/// open, so the thieves go right after peer ops whose first event falls
/// strictly inside the pilot-run `(store, commit)` sequence window.
/// When no peer op was observed in the window (or without a table),
/// falls back to [`thief_slots`]' strictly-after cluster.
fn steal_slots(
    align: Option<&RaceAlignment>,
    peer: usize,
    peer_len: usize,
    core: usize,
    op: usize,
    commit: Option<usize>,
) -> Vec<usize> {
    if let (Some(al), Some(commit)) = (align, commit) {
        let (anchor, end) = (al.seq(core, op), al.seq(core, commit));
        if anchor != u64::MAX {
            let in_window: Vec<usize> = al.first_seq.get(peer).map_or_else(Vec::new, |row| {
                row.iter()
                    .enumerate()
                    .filter(|&(_, &s)| s != u64::MAX && s > anchor && s < end)
                    .map(|(p, _)| p + 1)
                    .take(3)
                    .collect()
            });
            if !in_window.is_empty() {
                return finish_slots(in_window, peer_len);
            }
        }
    }
    thief_slots(align, peer, peer_len, core, op, true)
}

/// Addresses (up to 8, distinct blocks, none the victim's) for the
/// window-stretching reads of [`SeededBug::RelaxedSteal`]: undo-log
/// appends from the earliest part of the owner's stream. Log blocks
/// are written once and never read back, so by the time the site
/// executes they are long evicted — each read is a full miss.
fn steal_padding(
    ops: &[TraceOp],
    classes: &[OpClass],
    site: usize,
    block_bytes: u64,
) -> Vec<u64> {
    const PADS: usize = 24;
    let victim_block = match ops[site] {
        TraceOp::Store { addr, .. } | TraceOp::StoreRelaxed { addr, .. } => addr / block_bytes,
        _ => u64::MAX,
    };
    let mut blocks = Vec::new();
    let mut picked = Vec::new();
    // Forward scan first: a block whose first write (`DataFresh`) comes
    // *after* the site has never been touched yet, so reading it here is
    // a guaranteed cache miss — the slow path that actually stretches
    // the pre-commit window in the discrete-event schedule.
    for i in site + 1..ops.len() {
        if !matches!(classes[i], OpClass::DataFresh) {
            continue;
        }
        let (TraceOp::Store { addr, .. } | TraceOp::StoreRelaxed { addr, .. }) = ops[i] else {
            continue;
        };
        let b = addr / block_bytes;
        if b == victim_block || blocks.contains(&b) {
            continue;
        }
        blocks.push(b);
        picked.push(addr);
        if picked.len() == PADS {
            break;
        }
    }
    // Backstop for workloads with few fresh allocations: cold-ish undo
    // log blocks from earlier transactions.
    if picked.len() < PADS {
        for i in 0..site {
            if !matches!(classes[i], OpClass::LogAppend { .. }) {
                continue;
            }
            let (TraceOp::Store { addr, .. } | TraceOp::StoreRelaxed { addr, .. }) = ops[i] else {
                continue;
            };
            let b = addr / block_bytes;
            if b == victim_block || blocks.contains(&b) {
                continue;
            }
            blocks.push(b);
            picked.push(addr);
            if picked.len() == PADS {
                break;
            }
        }
    }
    picked
}

/// Clamps, orders (descending), and deduplicates insertion slots so
/// that inserting at each in turn leaves the others unshifted.
fn finish_slots(mut slots: Vec<usize>, peer_len: usize) -> Vec<usize> {
    for s in &mut slots {
        *s = (*s).min(peer_len);
    }
    slots.sort_unstable_by(|a, b| b.cmp(a));
    slots.dedup();
    slots
}

/// The nearest later data store on the same core that targets a
/// different block than the store at `i` — the other half of a
/// swapped-drain-order pair. The window is kept tight (4 ops) so both
/// victim persists are still WPQ-resident when the peer's racing pair
/// lands.
fn drain_pair_partner(
    ops: &[TraceOp],
    classes: &[OpClass],
    i: usize,
    block_bytes: u64,
) -> Option<(usize, u64, u32)> {
    let TraceOp::Store { addr: a0, .. } = ops[i] else {
        return None;
    };
    if !matches!(classes[i], OpClass::DataInPlace | OpClass::DataFresh) {
        return None;
    }
    for j in i + 1..=(i + 4).min(ops.len().saturating_sub(1)) {
        if !matches!(classes[j], OpClass::DataInPlace | OpClass::DataFresh) {
            continue;
        }
        let TraceOp::Store { addr: a1, len: l1 } = ops[j] else {
            continue;
        };
        if a1 / block_bytes != a0 / block_bytes {
            return Some((j, a1, l1));
        }
    }
    None
}

/// `(core, op)` sites where `bug` can be planted with an unambiguous
/// expected finding.
fn eligible_sites(
    annotated: &AnnotatedTrace,
    bug: SeededBug,
    block_bytes: u64,
) -> Vec<(usize, usize)> {
    let mut sites = Vec::new();
    // The race bugs need a second core to plant the racing op on.
    if bug.is_cross_core() && annotated.trace.cores.len() < 2 {
        return sites;
    }
    for (core, (ops, classes)) in annotated
        .trace
        .cores
        .iter()
        .zip(&annotated.classes)
        .enumerate()
    {
        match bug {
            SeededBug::DroppedFlush | SeededBug::RelaxedSteal => {
                // A data store (in-place or fresh — both must be durable
                // by commit) whose blocks no other store or flush of the
                // same transaction touches — otherwise that other access
                // would persist the victim's block as a side effect (same
                // cache line) and mask the bug.
                for &(start, end) in &tx_ranges(ops) {
                    for i in start..end {
                        if !matches!(classes[i], OpClass::DataInPlace | OpClass::DataFresh) {
                            continue;
                        }
                        let TraceOp::Store { addr, len } = ops[i] else {
                            continue;
                        };
                        let span = blocks_spanned(addr, len, block_bytes);
                        let private = (start..=end).all(|j| {
                            if j == i {
                                return true;
                            }
                            match ops[j] {
                                TraceOp::Store { addr, len }
                                | TraceOp::StoreRelaxed { addr, len }
                                | TraceOp::Flush { addr, len } => !spans_intersect(
                                    span,
                                    blocks_spanned(addr, len, block_bytes),
                                ),
                                _ => true,
                            }
                        });
                        if private {
                            sites.push((core, i));
                        }
                    }
                }
            }
            SeededBug::SwappedLogData => {
                // A log append immediately followed by the in-place
                // update it guards (the runtime always emits them
                // adjacently).
                for i in 0..classes.len().saturating_sub(1) {
                    let OpClass::LogAppend {
                        guard_addr,
                        guard_len,
                    } = classes[i]
                    else {
                        continue;
                    };
                    if classes[i + 1] == OpClass::DataInPlace
                        && ops[i + 1]
                            == (TraceOp::Store {
                                addr: guard_addr,
                                len: guard_len,
                            })
                    {
                        sites.push((core, i));
                    }
                }
            }
            SeededBug::DoubleFlush | SeededBug::UnfencedCounter | SeededBug::CoverOverlap => {
                for (i, class) in classes.iter().enumerate() {
                    if matches!(class, OpClass::DataInPlace | OpClass::DataFresh)
                        && matches!(ops[i], TraceOp::Store { .. })
                    {
                        sites.push((core, i));
                    }
                }
            }
            SeededBug::SwappedDrainOrder => {
                for i in 0..ops.len() {
                    if drain_pair_partner(ops, classes, i, block_bytes).is_some() {
                        sites.push((core, i));
                    }
                }
            }
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{self, WorkloadConfig, WorkloadKind};

    fn tiny_annotated(kind: WorkloadKind) -> AnnotatedTrace {
        let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.01);
        cfg.cores = 2;
        cfg.footprint = if kind == WorkloadKind::Swap { 32 } else { 2000 };
        cfg.prepopulate = cfg.footprint / 2;
        spec::generate_annotated(cfg)
    }

    #[test]
    fn classes_align_with_ops() {
        for kind in WorkloadKind::ALL {
            let a = tiny_annotated(kind);
            for (ops, classes) in a.trace.cores.iter().zip(&a.classes) {
                assert_eq!(ops.len(), classes.len(), "{kind}");
            }
        }
    }

    #[test]
    fn every_bug_seeds_into_every_workload() {
        for kind in WorkloadKind::ALL {
            let a = tiny_annotated(kind);
            for bug in SeededBug::ALL {
                // Swap is log-free by design (its writes are their own
                // inverse), so the log/data inversion has no site there.
                if kind == WorkloadKind::Swap && bug == SeededBug::SwappedLogData {
                    assert!(seed_bug(&a, bug, 7, 128).is_none());
                    continue;
                }
                let v = seed_bug(&a, bug, 7, 128)
                    .unwrap_or_else(|| panic!("{kind}: no eligible {bug} site"));
                assert_eq!(v.bug, bug);
                assert!(v.site.core < v.trace.cores.len());
                assert!(v.site.op < v.trace.cores[v.site.core].len());
                for (ops, classes) in v.trace.cores.iter().zip(&v.classes) {
                    assert_eq!(ops.len(), classes.len(), "{kind} {bug}: classes drifted");
                }
            }
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a = tiny_annotated(WorkloadKind::Btree);
        let v1 = seed_bug(&a, SeededBug::DroppedFlush, 7, 128).expect("site");
        let v2 = seed_bug(&a, SeededBug::DroppedFlush, 7, 128).expect("site");
        assert_eq!(v1.site, v2.site);
        assert_eq!(v1.trace.cores, v2.trace.cores);
        let sites: Vec<BugSite> = (0..16)
            .filter_map(|s| seed_bug(&a, SeededBug::DroppedFlush, s, 128))
            .map(|v| v.site)
            .collect();
        assert!(
            sites.iter().any(|s| *s != sites[0]),
            "different seeds should reach different sites"
        );
    }

    #[test]
    fn dropped_flush_demotes_exactly_one_store() {
        let a = tiny_annotated(WorkloadKind::Hashmap);
        let v = seed_bug(&a, SeededBug::DroppedFlush, 3, 128).expect("site");
        let relaxed: Vec<usize> = v.trace.cores[v.site.core]
            .iter()
            .enumerate()
            .filter_map(|(i, op)| matches!(op, TraceOp::StoreRelaxed { .. }).then_some(i))
            .collect();
        assert_eq!(relaxed, vec![v.site.op]);
        assert_eq!(
            v.trace.total_stores(),
            a.trace.total_stores(),
            "relaxed store still counts as a store"
        );
    }

    #[test]
    fn swapped_log_data_keeps_op_multiset() {
        let a = tiny_annotated(WorkloadKind::Ctree);
        let v = seed_bug(&a, SeededBug::SwappedLogData, 3, 128).expect("site");
        let ops = &v.trace.cores[v.site.core];
        // The data op now precedes its own log append.
        assert!(matches!(ops[v.site.op], TraceOp::Store { addr, .. } if addr == v.site.addr));
        let mut orig = a.trace.cores[v.site.core].clone();
        let mut mutated = ops.clone();
        orig.sort_by_key(|op| format!("{op:?}"));
        mutated.sort_by_key(|op| format!("{op:?}"));
        assert_eq!(orig, mutated, "swap must not add or drop ops");
    }

    #[test]
    fn double_flush_inserts_after_its_store() {
        let a = tiny_annotated(WorkloadKind::Swap);
        let v = seed_bug(&a, SeededBug::DoubleFlush, 3, 128).expect("site");
        let ops = &v.trace.cores[v.site.core];
        assert!(matches!(ops[v.site.op], TraceOp::Flush { addr, .. } if addr == v.site.addr));
        assert!(matches!(ops[v.site.op - 1], TraceOp::Store { addr, .. } if addr == v.site.addr));
        assert_eq!(ops.len(), a.trace.cores[v.site.core].len() + 1);
    }

    /// The peer core a race bug plants its thief cluster on.
    fn peer_of(v: &SeededVariant) -> usize {
        (v.site.core + 1) % v.trace.cores.len()
    }

    #[test]
    fn unfenced_counter_plants_racing_stores_on_peer_core() {
        let a = tiny_annotated(WorkloadKind::Hashmap);
        let v = seed_bug(&a, SeededBug::UnfencedCounter, 3, 128).expect("site");
        // Site is the victim endpoint; the victim stream is untouched.
        let ops = &v.trace.cores[v.site.core];
        assert!(matches!(ops[v.site.op], TraceOp::Store { addr, .. } if addr == v.site.addr));
        assert_eq!(ops.len(), a.trace.cores[v.site.core].len());
        // The thief cluster lives on the next core.
        let peer = peer_of(&v);
        let thieves = v.trace.cores[peer]
            .iter()
            .filter(|op| matches!(op, TraceOp::Store { addr, .. } if *addr == v.site.addr))
            .count();
        assert!((1..=3).contains(&thieves), "{thieves} thieves");
        assert_eq!(
            v.trace.cores[peer].len(),
            a.trace.cores[peer].len() + thieves
        );
    }

    #[test]
    fn swapped_drain_order_inserts_reversed_pairs() {
        let a = tiny_annotated(WorkloadKind::Btree);
        let v = seed_bug(&a, SeededBug::SwappedDrainOrder, 3, 128).expect("site");
        // Site is the victim's earlier store of the pair.
        let victim = &v.trace.cores[v.site.core];
        assert!(matches!(victim[v.site.op], TraceOp::Store { addr, .. } if addr == v.site.addr));
        // The peer got adjacent [later-block, earlier-block] pairs.
        let peer_ops = &v.trace.cores[peer_of(&v)];
        let grown = peer_ops.len() - a.trace.cores[peer_of(&v)].len();
        assert!(grown >= 2 && grown % 2 == 0, "grew by {grown}");
        let has_reversed_pair = peer_ops.windows(2).any(|w| {
            matches!(
                (&w[0], &w[1]),
                (TraceOp::Store { addr: a1, .. }, TraceOp::Store { addr: a0, .. })
                    if *a0 == v.site.addr && a1 / 128 != a0 / 128
            )
        });
        assert!(has_reversed_pair);
    }

    #[test]
    fn relaxed_steal_demotes_owner_and_plants_thieves() {
        let a = tiny_annotated(WorkloadKind::Hashmap);
        let v = seed_bug(&a, SeededBug::RelaxedSteal, 3, 128).expect("site");
        let owner = &v.trace.cores[v.site.core];
        assert!(
            matches!(owner[v.site.op], TraceOp::StoreRelaxed { addr, .. } if addr == v.site.addr)
        );
        let peer = peer_of(&v);
        assert!(v.trace.cores[peer]
            .iter()
            .any(|op| matches!(op, TraceOp::Store { addr, .. } if *addr == v.site.addr)));
        assert!(v.trace.cores[peer].len() > a.trace.cores[peer].len());
    }

    #[test]
    fn cover_overlap_targets_a_block_aligned_address() {
        let a = tiny_annotated(WorkloadKind::Queue);
        let v = seed_bug(&a, SeededBug::CoverOverlap, 3, 128).expect("site");
        assert_eq!(v.site.addr % 128, 0, "cover sites are block-aligned");
        // The victim store covers the target block; the peer pokes it.
        let TraceOp::Store { addr, len } = v.trace.cores[v.site.core][v.site.op] else {
            panic!("victim site is a store");
        };
        assert_eq!((addr + u64::from(len) - 1) / 128, v.site.addr / 128);
        assert!(v.trace.cores[peer_of(&v)]
            .iter()
            .any(|op| matches!(op, TraceOp::Store { addr, len: 8 } if *addr == v.site.addr)));
    }

    #[test]
    fn alignment_brackets_and_slots_behave() {
        let al = RaceAlignment {
            first_seq: vec![
                vec![0, 4, 9],
                vec![2, u64::MAX, u64::MAX, 11, 20],
            ],
        };
        // First peer op at-or-after seq 9 is index 3 (MAX ops skipped).
        assert_eq!(al.insert_index(1, 9), 3);
        // Last peer op before seq 9 is index 0, so the gap opens at 1.
        assert_eq!(al.gap(1, 9), (1, 3));
        assert_eq!(al.seq(1, 2), u64::MAX);
        assert_eq!(al.seq(9, 0), u64::MAX, "missing core");
        // Slots bracket the gap, descending, deduped, clamped.
        assert_eq!(thief_slots(Some(&al), 1, 5, 0, 2, false), vec![4, 3, 1]);
        assert_eq!(thief_slots(Some(&al), 1, 5, 0, 2, true), vec![5, 4, 3]);
        assert_eq!(thief_slots(Some(&al), 1, 4, 0, 2, true), vec![4, 3]);
        assert_eq!(thief_slots(None, 1, 100, 0, 7, false), vec![10, 9, 8]);
    }

    #[test]
    fn race_bugs_need_two_cores() {
        let mut cfg = WorkloadConfig::paper_default(WorkloadKind::Btree).scaled(0.01);
        cfg.cores = 1;
        cfg.footprint = 2000;
        cfg.prepopulate = cfg.footprint / 2;
        let a = spec::generate_annotated(cfg);
        for bug in SeededBug::RACES {
            assert!(seed_bug(&a, bug, 7, 128).is_none(), "{bug} needs 2 cores");
        }
        for bug in SeededBug::CLASSIC {
            assert!(seed_bug(&a, bug, 7, 128).is_some(), "{bug} works single-core");
        }
    }

    #[test]
    fn names_roundtrip() {
        for b in SeededBug::ALL {
            assert_eq!(SeededBug::from_name(b.name()), Some(b));
        }
        assert_eq!(SeededBug::from_name("nope"), None);
    }
}
