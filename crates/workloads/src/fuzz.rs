//! Seeded, well-formed persist-trace fuzzer (generator half).
//!
//! [`generate_fuzz`] produces small multi-core traces that are **clean by
//! construction**: every op stream is emitted by the real undo-logging
//! runtime ([`crate::TxRuntime`]), so write-ahead ordering, commit
//! records, and persist barriers are all present and correctly placed —
//! the persist-ordering sanitizer must report zero findings on any of
//! them, any crash point must recover, and the golden shadow heap must
//! match the machine. The fuzz harness (`thoth-experiments fuzz`) runs
//! each generated trace through the real simulator with crash injection
//! and cross-checks those three observers; a disagreement on a trace this
//! generator produced is a bug in one of the observers, never in the
//! trace.
//!
//! The generator is biased, not uniform:
//!
//! * **hot-counter bias** — a small per-core pool of hot 8-byte slots
//!   absorbs [`FuzzSpec::hot_bias_pct`]% of the in-place writes, so WPQ
//!   coalescing, undo-log dedup, and repeated metadata covers of the same
//!   block all get exercised (the paths where observer bookkeeping is
//!   most likely to diverge);
//! * **tenant-sharded overlap** — cores model tenants: each core's
//!   addresses live in its own heap shard ([`crate::spec`]'s per-core
//!   heap base), so address overlap is dense *within* a core and absent
//!   *across* cores — exactly the sharing discipline of the multi-tenant
//!   service, and the reason the traces stay race-free.
//!
//! Everything derives from [`FuzzSpec::seed`]: the same spec generates
//! the same trace, so any cross-check disagreement replays exactly from
//! its `SEED:ANCHOR` recipe.

use crate::runtime::AnnotatedTrace;
use crate::service::MixStats;
use crate::spec::core_heap_base;
use crate::{MultiCoreTrace, TxRuntime};

use thoth_sim_engine::DetRng;

/// Seed salt for fuzz-trace generation (distinct from workload seeds).
const FUZZ_SALT: u64 = 0xF0_7E57;

/// Shape of one generated fuzz trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzSpec {
    /// Seed; the trace is a pure function of the spec.
    pub seed: u64,
    /// Simulated cores (= tenants; shards never overlap).
    pub cores: usize,
    /// Transactions per core.
    pub txs_per_core: usize,
    /// Maximum writes per transaction (at least one is always emitted).
    pub writes_per_tx: usize,
    /// Hot 8-byte slots per core.
    pub hot_slots: u64,
    /// Probability (percent) that an in-place write hits a hot slot —
    /// the address-overlap bias.
    pub hot_bias_pct: u8,
    /// Cold-object payload size in bytes.
    pub value_bytes: usize,
}

impl FuzzSpec {
    /// The quick-mode shape: tiny traces (hundreds run in seconds), two
    /// cores, update-heavy overlap.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        FuzzSpec {
            seed,
            cores: 2,
            txs_per_core: 6,
            writes_per_tx: 4,
            hot_slots: 4,
            hot_bias_pct: 60,
            value_bytes: 24,
        }
    }

    /// [`Self::quick`] with the address-overlap bias taken from a real
    /// service mix: the mutate fraction of the measured request stream
    /// becomes the hot-slot probability (clamped to keep both hot and
    /// cold paths exercised). A read-heavy YCSB-B stream thus fuzzes
    /// sparse overlap, an update-heavy YCSB-A/F stream dense overlap.
    #[must_use]
    pub fn biased(seed: u64, mix: &MixStats) -> Self {
        let pct = (mix.mutate_per_mille() / 10).clamp(10, 90) as u8;
        FuzzSpec {
            hot_bias_pct: pct,
            ..FuzzSpec::quick(seed)
        }
    }
}

/// Generates one clean-by-construction annotated trace for `spec`.
///
/// # Panics
///
/// Panics on a spec with zero cores or zero hot slots.
#[must_use]
pub fn generate_fuzz(spec: &FuzzSpec) -> AnnotatedTrace {
    assert!(spec.cores > 0, "need at least one core");
    assert!(spec.hot_slots > 0, "need at least one hot slot");
    let mut cores = Vec::with_capacity(spec.cores);
    let mut classes = Vec::with_capacity(spec.cores);
    for core in 0..spec.cores {
        let mut rng = DetRng::seed_from(spec.seed ^ FUZZ_SALT ^ (core as u64) << 32);
        let mut rt = TxRuntime::new(core_heap_base(core));

        // Hot slots and a seed cold object exist before the traced phase
        // (like the workloads' database-loading step), so in-place
        // updates of them are genuine old-value overwrites.
        rt.set_tracing(false);
        let hot: Vec<u64> = (0..spec.hot_slots).map(|_| rt.alloc(8)).collect();
        let mut cold: Vec<u64> = vec![rt.alloc(spec.value_bytes as u64)];
        rt.begin();
        for &h in &hot {
            rt.write_new_u64(h, 0);
        }
        rt.write_new(cold[0], &vec![0u8; spec.value_bytes]);
        rt.commit();
        rt.set_tracing(true);

        for tx in 0..spec.txs_per_core {
            rt.begin();
            let writes = 1 + rng.gen_index(spec.writes_per_tx.max(1));
            for w in 0..writes {
                if rng.gen_index(100) < spec.hot_bias_pct as usize {
                    // Hot-counter bump: read-modify-write of a shared
                    // (within-core) slot — dense block overlap.
                    let slot = hot[rng.gen_index(hot.len())];
                    let v = rt.read_u64(slot);
                    rt.write_u64(slot, v.wrapping_add(1 + tx as u64));
                } else if rng.gen_index(2) == 0 {
                    // Fresh allocation: no undo entry by design.
                    let p = rt.alloc(spec.value_bytes as u64);
                    rt.write_new(p, &vec![(tx + w) as u8; spec.value_bytes]);
                    cold.push(p);
                } else {
                    // In-place update of an existing cold object
                    // (write-ahead logged).
                    let p = cold[rng.gen_index(cold.len())];
                    rt.write(p, &vec![(tx ^ w) as u8; spec.value_bytes]);
                }
            }
            rt.commit();
        }
        let (ops, cls) = rt.into_annotated();
        cores.push(ops);
        classes.push(cls);
    }
    AnnotatedTrace {
        trace: MultiCoreTrace {
            cores,
            warmup_txs_per_core: 0,
        },
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpClass, TraceOp};

    #[test]
    fn generation_is_deterministic() {
        let spec = FuzzSpec::quick(42);
        let a = generate_fuzz(&spec);
        let b = generate_fuzz(&spec);
        assert_eq!(a.trace.cores, b.trace.cores);
        assert_eq!(a.classes, b.classes);
        let c = generate_fuzz(&FuzzSpec::quick(43));
        assert_ne!(a.trace.cores, c.trace.cores, "seed must matter");
    }

    #[test]
    fn traces_have_valid_transaction_structure() {
        let a = generate_fuzz(&FuzzSpec::quick(7));
        assert_eq!(a.trace.cores.len(), 2);
        for (ops, cls) in a.trace.cores.iter().zip(&a.classes) {
            assert_eq!(ops.len(), cls.len());
            assert!(matches!(ops.last(), Some(TraceOp::Commit)));
            // Every in-place data write is guarded by a log append of
            // the same open transaction (write-ahead logging); fresh
            // writes need none.
            let mut guarded: Vec<(u64, u64)> = Vec::new();
            for (op, class) in ops.iter().zip(cls) {
                match *class {
                    OpClass::LogAppend {
                        guard_addr,
                        guard_len,
                    } => guarded.push((guard_addr, u64::from(guard_len))),
                    OpClass::DataInPlace => {
                        let TraceOp::Store { addr, len } = *op else {
                            panic!("in-place class on non-store op");
                        };
                        assert!(
                            guarded
                                .iter()
                                .any(|&(a, l)| a <= addr && addr + u64::from(len) <= a + l),
                            "unguarded in-place write at {addr:#x}"
                        );
                    }
                    OpClass::Commit => guarded.clear(),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn cores_are_tenant_sharded() {
        // No persistent address is touched by more than one core: the
        // traces are race-free by construction.
        let a = generate_fuzz(&FuzzSpec::quick(11));
        let addrs = |ops: &[TraceOp]| -> Vec<u64> {
            ops.iter()
                .filter_map(|op| match *op {
                    TraceOp::Store { addr, .. } | TraceOp::StoreRelaxed { addr, .. } => Some(addr),
                    _ => None,
                })
                .collect()
        };
        let a0 = addrs(&a.trace.cores[0]);
        let a1 = addrs(&a.trace.cores[1]);
        assert!(!a0.is_empty() && !a1.is_empty());
        assert!(a0.iter().all(|x| !a1.contains(x)), "shards overlap");
    }

    #[test]
    fn hot_bias_concentrates_the_address_footprint() {
        let block = |a: u64| a / 128;
        let distinct = |spec: &FuzzSpec| {
            let t = generate_fuzz(spec);
            let mut blocks: Vec<u64> = t.trace.cores[0]
                .iter()
                .filter_map(|op| match *op {
                    TraceOp::Store { addr, .. } => Some(block(addr)),
                    _ => None,
                })
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            blocks.len()
        };
        let mut hot = FuzzSpec::quick(3);
        hot.hot_bias_pct = 95;
        let mut cold = FuzzSpec::quick(3);
        cold.hot_bias_pct = 0;
        assert!(
            distinct(&hot) < distinct(&cold),
            "bias must shrink the touched-block set"
        );
    }

    #[test]
    fn mix_stats_steer_the_bias() {
        let read_heavy = MixStats {
            reads: 950,
            updates: 50,
            rmws: 0,
        };
        let update_heavy = MixStats {
            reads: 500,
            updates: 500,
            rmws: 0,
        };
        let b = FuzzSpec::biased(1, &read_heavy);
        let f = FuzzSpec::biased(1, &update_heavy);
        assert!(b.hot_bias_pct < f.hot_bias_pct);
        assert!((10..=90).contains(&b.hot_bias_pct));
        assert_eq!(FuzzSpec::biased(1, &MixStats::default()).hot_bias_pct, 10);
    }
}
