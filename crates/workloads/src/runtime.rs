//! The undo-logging transaction runtime and the persistent-store trace.
//!
//! WHISPER's database benchmarks wrap every operation in a durable
//! transaction: old values are appended to a persistent undo log, the data
//! is updated in place, and a commit record makes the transaction durable
//! (each step ordered by persist barriers). [`TxRuntime`] provides exactly
//! that discipline to the workload data structures and records every
//! persistent store and read as a [`TraceOp`] for the simulator to replay.

use crate::heap::PersistentHeap;

/// One operation in a core's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A data read (pointer chase, key comparison, old-value fetch).
    Read {
        /// Byte address.
        addr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// A persistent store that must reach the persistence domain.
    Store {
        /// Byte address.
        addr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// A store that stays in the volatile cache hierarchy until a later
    /// [`TraceOp::Flush`] writes it back (the `mov` + `clwb` idiom;
    /// [`TraceOp::Store`] models non-temporal stores whose write-back is
    /// implicit). On its own it creates **no** durable-ordering edge.
    StoreRelaxed {
        /// Byte address.
        addr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Cache-line write-back of `[addr, addr+len)` (`clwb`): every
    /// relaxed-dirty block in the range enters the persistence domain.
    Flush {
        /// Byte address.
        addr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// A persist barrier (`sfence`) without commit semantics: the core
    /// waits for every outstanding persist ACK before continuing.
    Fence,
    /// The transaction's persist barrier (sfence after the commit record):
    /// every prior store must be ACKed persistent before the core
    /// continues.
    Commit,
}

/// The transactional role of one [`TraceOp`] — recorded alongside the
/// trace by [`TxRuntime`] so the persistency sanitizer (`thoth-psan`) can
/// check the undo-logging discipline op by op. The class stream is always
/// index-aligned with the op stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// A read access.
    Read,
    /// An undo-log append guarding the in-place update of
    /// `[guard_addr, guard_addr + guard_len)`. Must be persist-ordered
    /// before that update (write-ahead logging).
    LogAppend {
        /// Address of the data range this log entry guards.
        guard_addr: u64,
        /// Length of the guarded range.
        guard_len: u32,
    },
    /// The commit record making the transaction durable.
    CommitRecord,
    /// An in-place data update (guarded by a [`OpClass::LogAppend`] of the
    /// same transaction).
    DataInPlace,
    /// A store to freshly allocated, never-exposed memory (needs no undo
    /// entry).
    DataFresh,
    /// A cache-line write-back.
    Flush,
    /// A persist barrier.
    Fence,
    /// The transaction's commit barrier.
    Commit,
}

/// The trace of one core: the ops of all its transactions, in order.
pub type CoreTrace = Vec<TraceOp>;

/// Traces for all simulated cores plus the warmup boundary.
#[derive(Debug, Clone, Default)]
pub struct MultiCoreTrace {
    /// One trace per core.
    pub cores: Vec<CoreTrace>,
    /// Number of leading transactions per core that are warm-up (the
    /// paper fast-forwards ≥5000 transactions per core before measuring).
    pub warmup_txs_per_core: usize,
}

impl MultiCoreTrace {
    /// Total committed transactions across all cores.
    #[must_use]
    pub fn total_txs(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.iter().filter(|op| matches!(op, TraceOp::Commit)).count())
            .sum()
    }

    /// Total persistent stores across all cores (relaxed stores count:
    /// they carry persistent data even though their write-back is a
    /// separate [`TraceOp::Flush`]).
    #[must_use]
    pub fn total_stores(&self) -> usize {
        self.cores
            .iter()
            .map(|c| {
                c.iter()
                    .filter(|op| {
                        matches!(op, TraceOp::Store { .. } | TraceOp::StoreRelaxed { .. })
                    })
                    .count()
            })
            .sum()
    }
}

/// A trace together with its per-op [`OpClass`] annotations
/// (`classes[core][i]` classifies `trace.cores[core][i]`).
#[derive(Debug, Clone, Default)]
pub struct AnnotatedTrace {
    /// The op streams.
    pub trace: MultiCoreTrace,
    /// Index-aligned class streams, one per core.
    pub classes: Vec<Vec<OpClass>>,
}

/// Per-runtime statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Committed transactions.
    pub txs: u64,
    /// Persistent stores emitted (including log appends and commits).
    pub stores: u64,
    /// Persistent bytes stored.
    pub bytes_stored: u64,
    /// Undo-log appends.
    pub log_appends: u64,
}

/// The per-core transaction runtime: heap + undo log + trace recorder.
///
/// # Example
///
/// ```
/// use thoth_workloads::{TraceOp, TxRuntime};
///
/// let mut rt = TxRuntime::new(0x1000_0000);
/// let p = rt.alloc(64);
/// rt.begin();
/// rt.write_new(p, &[1u8; 16]);   // fresh allocation: no undo entry
/// rt.commit();
///
/// rt.begin();
/// rt.write(p, &[2u8; 16]);       // in-place update: undo-logged
/// rt.commit();
///
/// let trace = rt.into_trace();
/// assert_eq!(trace.iter().filter(|op| matches!(op, TraceOp::Commit)).count(), 2);
/// ```
#[derive(Debug)]
pub struct TxRuntime {
    heap: PersistentHeap,
    trace: CoreTrace,
    /// Index-aligned with `trace`.
    classes: Vec<OpClass>,
    log_base: u64,
    log_cap: u64,
    log_head: u64,
    in_tx: bool,
    stores_in_tx: u64,
    /// Ranges undo-logged in the open transaction (dedup: a range's
    /// pre-transaction image only needs logging once — re-logging it
    /// would capture an intermediate value, which is both wasted write
    /// bandwidth and an undo-replay hazard).
    logged_ranges: Vec<(u64, u64)>,
    undo_dedup: bool,
    tracing: bool,
    stats: RuntimeStats,
}

/// Undo-log region size per core (1 MB; transactions are far smaller).
const LOG_CAP: u64 = 1 << 20;

/// Undo-log entry header: target address (8 B) + length (8 B).
const LOG_HDR: u64 = 16;

impl TxRuntime {
    /// Creates a runtime whose heap starts at `heap_base`. The undo log is
    /// carved from the start of the heap.
    #[must_use]
    pub fn new(heap_base: u64) -> Self {
        let mut heap = PersistentHeap::new(heap_base);
        let log_base = heap.alloc(LOG_CAP);
        TxRuntime {
            heap,
            trace: Vec::new(),
            classes: Vec::new(),
            log_base,
            log_cap: LOG_CAP,
            log_head: 0,
            in_tx: false,
            stores_in_tx: 0,
            logged_ranges: Vec::new(),
            undo_dedup: true,
            tracing: true,
            stats: RuntimeStats::default(),
        }
    }

    /// Enables or disables per-transaction undo-log dedup (on by default).
    /// With dedup off, every [`Self::write`] appends an undo entry even if
    /// the same range was already logged in the open transaction — the
    /// covered-log-append smell `thoth-psan` flags.
    pub fn set_undo_dedup(&mut self, on: bool) {
        self.undo_dedup = on;
    }

    /// Enables or disables trace recording. With tracing off, heap
    /// mutations and undo logging still execute (the structure is really
    /// built) but no [`TraceOp`]s are emitted — used to pre-populate a
    /// workload's data set before the traced phase, like WHISPER's
    /// database-loading step.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The underlying heap (read-only).
    #[must_use]
    pub fn heap(&self) -> &PersistentHeap {
        &self.heap
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// Number of trace ops recorded so far (the open-loop service
    /// generator delimits per-request op extents with length deltas).
    #[must_use]
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }

    /// Allocates persistent memory (no trace — allocator metadata updates
    /// are modeled as part of the structures' own writes).
    pub fn alloc(&mut self, size: u64) -> u64 {
        self.heap.alloc(size)
    }

    /// Begins a transaction.
    ///
    /// # Panics
    ///
    /// Panics on nested transactions.
    pub fn begin(&mut self) {
        assert!(!self.in_tx, "nested transactions are not supported");
        self.in_tx = true;
        self.stores_in_tx = 0;
        self.log_head = 0;
        self.logged_ranges.clear();
    }

    /// Records one op and its class (only while tracing).
    fn push_op(&mut self, op: TraceOp, class: OpClass) {
        self.trace.push(op);
        self.classes.push(class);
    }

    /// Reads `len` bytes, recording the access.
    pub fn read(&mut self, addr: u64, len: usize) -> Vec<u8> {
        if self.tracing {
            self.push_op(
                TraceOp::Read {
                    addr,
                    len: len as u32,
                },
                OpClass::Read,
            );
        }
        self.heap.read(addr, len)
    }

    /// Reads a `u64`, recording the access.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read(addr, 8).try_into().expect("8 bytes"))
    }

    fn raw_store(&mut self, addr: u64, bytes: &[u8], class: OpClass) {
        self.heap.write(addr, bytes);
        self.stores_in_tx += 1;
        if self.tracing {
            self.push_op(
                TraceOp::Store {
                    addr,
                    len: bytes.len() as u32,
                },
                class,
            );
            self.stats.stores += 1;
            self.stats.bytes_stored += bytes.len() as u64;
        }
    }

    /// Appends an undo record for `[addr, addr+len)` to the log.
    fn log_append(&mut self, addr: u64, len: usize) {
        let need = LOG_HDR + len as u64;
        if self.log_head + need > self.log_cap {
            self.log_head = 0; // circular; validity is bounded by the commit record
        }
        let dst = self.log_base + self.log_head;
        let old = self.heap.read(addr, len);
        let mut rec = Vec::with_capacity(16 + len);
        rec.extend_from_slice(&addr.to_le_bytes());
        rec.extend_from_slice(&(len as u64).to_le_bytes());
        rec.extend_from_slice(&old);
        self.raw_store(
            dst,
            &rec,
            OpClass::LogAppend {
                guard_addr: addr,
                guard_len: len as u32,
            },
        );
        self.log_head += need;
        self.stats.log_appends += 1;
    }

    /// Transactionally writes `bytes` at `addr`: the old contents are
    /// undo-logged first (write-ahead), then the data is stored. A range
    /// already logged by this transaction is not re-logged (see
    /// [`Self::set_undo_dedup`]).
    ///
    /// # Panics
    ///
    /// Panics outside a transaction.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) {
        assert!(self.in_tx, "transactional write outside a transaction");
        let len = bytes.len() as u64;
        let covered = self.undo_dedup
            && self
                .logged_ranges
                .iter()
                .any(|&(a, l)| a <= addr && addr + len <= a + l);
        if !covered {
            self.log_append(addr, bytes.len());
            self.logged_ranges.push((addr, len));
        }
        self.raw_store(addr, bytes, OpClass::DataInPlace);
    }

    /// Transactionally writes a `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Writes to freshly allocated, never-exposed memory: persistent but
    /// with no undo entry (there is no old state to restore).
    pub fn write_new(&mut self, addr: u64, bytes: &[u8]) {
        assert!(self.in_tx, "transactional write outside a transaction");
        self.raw_store(addr, bytes, OpClass::DataFresh);
    }

    /// Writes a `u64` to fresh memory.
    pub fn write_new_u64(&mut self, addr: u64, v: u64) {
        self.write_new(addr, &v.to_le_bytes());
    }

    /// Commits: writes the commit record and emits the persist barrier.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction.
    pub fn commit(&mut self) {
        assert!(self.in_tx, "commit outside a transaction");
        // Commit record: transaction sequence number at the log tail
        // slot. Read-only transactions persist nothing and need no
        // record (nor a persist barrier).
        if self.stores_in_tx > 0 {
            let rec_addr = self.log_base + self.log_cap - 8;
            let seq = self.stats.txs + 1;
            self.raw_store(rec_addr, &seq.to_le_bytes(), OpClass::CommitRecord);
            if self.tracing {
                self.push_op(TraceOp::Commit, OpClass::Commit);
                self.stats.txs += 1;
            }
        }
        self.in_tx = false;
    }

    /// Finishes tracing and returns the recorded trace.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is still open.
    #[must_use]
    pub fn into_trace(self) -> CoreTrace {
        assert!(!self.in_tx, "open transaction at end of trace");
        self.trace
    }

    /// Finishes tracing and returns the trace together with its
    /// index-aligned [`OpClass`] stream.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is still open.
    #[must_use]
    pub fn into_annotated(self) -> (CoreTrace, Vec<OpClass>) {
        assert!(!self.in_tx, "open transaction at end of trace");
        debug_assert_eq!(self.trace.len(), self.classes.len());
        (self.trace, self.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_logs_old_value_first() {
        let mut rt = TxRuntime::new(0);
        let p = rt.alloc(8);
        rt.begin();
        rt.write_new_u64(p, 7);
        rt.commit();
        rt.begin();
        rt.write_u64(p, 9);
        rt.commit();
        let stats = rt.stats();
        assert_eq!(stats.txs, 2);
        assert_eq!(stats.log_appends, 1, "only the in-place update logs");
        // Ops of tx2: log store, data store, commit store, Commit.
        let trace = rt.into_trace();
        let tx2: Vec<_> = trace
            .split(|op| matches!(op, TraceOp::Commit))
            .nth(1)
            .unwrap()
            .to_vec();
        assert_eq!(tx2.len(), 3);
        assert!(matches!(tx2[0], TraceOp::Store { len: 24, .. })); // 16B header + 8B old
        assert!(matches!(tx2[1], TraceOp::Store { addr, len: 8 } if addr == p));
    }

    #[test]
    fn undo_log_contains_old_bytes() {
        let mut rt = TxRuntime::new(0);
        let p = rt.alloc(8);
        rt.begin();
        rt.write_new_u64(p, 0xAAAA);
        rt.commit();
        rt.begin();
        rt.write_u64(p, 0xBBBB);
        // Log entry sits at log_base: header {addr, len} + old value.
        let log_base = rt.log_base;
        assert_eq!(rt.heap().read_u64(log_base), p);
        assert_eq!(rt.heap().read_u64(log_base + 8), 8);
        assert_eq!(rt.heap().read_u64(log_base + 16), 0xAAAA);
        rt.commit();
    }

    #[test]
    fn reads_are_traced() {
        let mut rt = TxRuntime::new(0);
        let p = rt.alloc(8);
        rt.begin();
        rt.write_new_u64(p, 5);
        rt.commit();
        assert_eq!(rt.read_u64(p), 5);
        let trace = rt.into_trace();
        assert!(trace
            .iter()
            .any(|op| matches!(op, TraceOp::Read { addr, len: 8 } if *addr == p)));
    }

    #[test]
    fn heap_state_reflects_writes() {
        let mut rt = TxRuntime::new(0x5000);
        let p = rt.alloc(16);
        rt.begin();
        rt.write_new(p, b"persistentmemory");
        rt.commit();
        assert_eq!(rt.heap().read(p, 16), b"persistentmemory");
    }

    #[test]
    fn log_wraps_without_overflowing_region() {
        let mut rt = TxRuntime::new(0);
        let p = rt.alloc(4096);
        rt.begin();
        rt.write_new(p, &vec![1u8; 4096]);
        rt.commit();
        // Many large logged updates exceed the 1 MB log: must wrap.
        for _ in 0..600 {
            rt.begin();
            rt.write(p, &vec![2u8; 4096]);
            rt.commit();
        }
        assert!(rt.log_head <= rt.log_cap);
    }

    #[test]
    fn multicore_trace_counters() {
        let mut rt = TxRuntime::new(0);
        let p = rt.alloc(8);
        rt.begin();
        rt.write_new_u64(p, 1);
        rt.commit();
        let mc = MultiCoreTrace {
            cores: vec![rt.into_trace()],
            warmup_txs_per_core: 0,
        };
        assert_eq!(mc.total_txs(), 1);
        assert_eq!(mc.total_stores(), 2); // data + commit record
    }

    #[test]
    fn undo_dedup_skips_covered_ranges() {
        // Default (dedup on): a range already logged in the open
        // transaction is not logged again.
        let mut rt = TxRuntime::new(0);
        let p = rt.alloc(8);
        rt.begin();
        rt.write_new_u64(p, 1);
        rt.commit();
        rt.begin();
        rt.write_u64(p, 2);
        rt.write_u64(p, 3);
        rt.commit();
        assert_eq!(rt.stats().log_appends, 1, "second write is covered");

        // Dedup off: the covered-log-append smell returns (what the
        // sanitizer flags).
        let mut rt = TxRuntime::new(0);
        rt.set_undo_dedup(false);
        let p = rt.alloc(8);
        rt.begin();
        rt.write_new_u64(p, 1);
        rt.commit();
        rt.begin();
        rt.write_u64(p, 2);
        rt.write_u64(p, 3);
        rt.commit();
        assert_eq!(rt.stats().log_appends, 2);
    }

    #[test]
    fn undo_dedup_resets_at_transaction_boundaries() {
        let mut rt = TxRuntime::new(0);
        let p = rt.alloc(8);
        rt.begin();
        rt.write_new_u64(p, 1);
        rt.commit();
        for v in [2u64, 3] {
            rt.begin();
            rt.write_u64(p, v);
            rt.commit();
        }
        assert_eq!(rt.stats().log_appends, 2, "each tx logs the range once");
    }

    #[test]
    fn annotated_classes_mirror_the_ops() {
        let mut rt = TxRuntime::new(0);
        let p = rt.alloc(8);
        rt.begin();
        rt.write_new_u64(p, 1);
        rt.commit();
        rt.begin();
        rt.write_u64(p, 2);
        rt.commit();
        let (ops, classes) = rt.into_annotated();
        assert_eq!(ops.len(), classes.len());
        // Transaction 2: log append, in-place data, commit record, commit.
        let n = ops.len();
        assert!(matches!(
            classes[n - 4],
            OpClass::LogAppend { guard_addr, guard_len } if guard_addr == p && guard_len == 8
        ));
        assert_eq!(classes[n - 3], OpClass::DataInPlace);
        assert_eq!(classes[n - 2], OpClass::CommitRecord);
        assert_eq!(classes[n - 1], OpClass::Commit);
        assert!(matches!(ops[n - 1], TraceOp::Commit));
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn nested_begin_panics() {
        let mut rt = TxRuntime::new(0);
        rt.begin();
        rt.begin();
    }

    #[test]
    #[should_panic(expected = "outside a transaction")]
    fn write_outside_tx_panics() {
        let mut rt = TxRuntime::new(0);
        let p = rt.alloc(8);
        rt.write_u64(p, 1);
    }

    #[test]
    #[should_panic(expected = "open transaction")]
    fn into_trace_with_open_tx_panics() {
        let mut rt = TxRuntime::new(0);
        rt.begin();
        let _ = rt.into_trace();
    }
}
