//! A persistent red-black tree (WHISPER's `rbtree` workload).
//!
//! Classic CLRS red-black insertion with parent pointers, operating
//! directly on heap memory. Rebalancing produces the workload's signature
//! behaviour: many small scattered 8-byte pointer/color stores per
//! transaction (each undo-logged), in contrast to the B-tree's whole-node
//! rewrites.
//!
//! Node layout (48 bytes):
//!
//! ```text
//! 0   key      (u64)
//! 8   value    (blob pointer)
//! 16  left     (node pointer, 0 = nil)
//! 24  right
//! 32  parent
//! 40  color    (0 = black, 1 = red)
//! ```

use crate::runtime::TxRuntime;
use thoth_sim_engine::DetRng;

const NODE_BYTES: u64 = 48;
const NIL: u64 = 0;

const OFF_KEY: u64 = 0;
const OFF_VAL: u64 = 8;
const OFF_LEFT: u64 = 16;
const OFF_RIGHT: u64 = 24;
const OFF_PARENT: u64 = 32;
const OFF_COLOR: u64 = 40;

const BLACK: u64 = 0;
const RED: u64 = 1;

/// A persistent red-black tree.
#[derive(Debug)]
pub struct RbTree {
    root: u64,
    len: usize,
    value_size: usize,
}

impl RbTree {
    /// Creates an empty tree; values are blobs of `value_size` bytes.
    #[must_use]
    pub fn create(value_size: usize) -> Self {
        RbTree {
            root: NIL,
            len: 0,
            value_size,
        }
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    // Field helpers. Reads are traced; writes are undo-logged 8 B stores.
    fn get(rt: &mut TxRuntime, node: u64, off: u64) -> u64 {
        rt.read_u64(node + off)
    }
    fn set(rt: &mut TxRuntime, node: u64, off: u64, v: u64) {
        rt.write_u64(node + off, v);
    }

    fn left(rt: &mut TxRuntime, n: u64) -> u64 {
        Self::get(rt, n, OFF_LEFT)
    }
    fn right(rt: &mut TxRuntime, n: u64) -> u64 {
        Self::get(rt, n, OFF_RIGHT)
    }
    fn parent(rt: &mut TxRuntime, n: u64) -> u64 {
        Self::get(rt, n, OFF_PARENT)
    }
    fn color(rt: &mut TxRuntime, n: u64) -> u64 {
        if n == NIL {
            BLACK
        } else {
            Self::get(rt, n, OFF_COLOR)
        }
    }

    fn write_value(&self, rt: &mut TxRuntime, fill: u64) -> u64 {
        let blob = rt.alloc(self.value_size as u64);
        let bytes: Vec<u8> = (0..self.value_size)
            .map(|i| (fill as u8).wrapping_add(i as u8))
            .collect();
        rt.write_new(blob, &bytes);
        blob
    }

    fn rotate_left(&mut self, rt: &mut TxRuntime, x: u64) {
        let y = Self::right(rt, x);
        let y_left = Self::left(rt, y);
        Self::set(rt, x, OFF_RIGHT, y_left);
        if y_left != NIL {
            Self::set(rt, y_left, OFF_PARENT, x);
        }
        let xp = Self::parent(rt, x);
        Self::set(rt, y, OFF_PARENT, xp);
        if xp == NIL {
            self.root = y;
        } else if Self::left(rt, xp) == x {
            Self::set(rt, xp, OFF_LEFT, y);
        } else {
            Self::set(rt, xp, OFF_RIGHT, y);
        }
        Self::set(rt, y, OFF_LEFT, x);
        Self::set(rt, x, OFF_PARENT, y);
    }

    fn rotate_right(&mut self, rt: &mut TxRuntime, x: u64) {
        let y = Self::left(rt, x);
        let y_right = Self::right(rt, y);
        Self::set(rt, x, OFF_LEFT, y_right);
        if y_right != NIL {
            Self::set(rt, y_right, OFF_PARENT, x);
        }
        let xp = Self::parent(rt, x);
        Self::set(rt, y, OFF_PARENT, xp);
        if xp == NIL {
            self.root = y;
        } else if Self::right(rt, xp) == x {
            Self::set(rt, xp, OFF_RIGHT, y);
        } else {
            Self::set(rt, xp, OFF_LEFT, y);
        }
        Self::set(rt, y, OFF_RIGHT, x);
        Self::set(rt, x, OFF_PARENT, y);
    }

    /// Inserts `key` with a fresh value blob (copy-on-write update if the
    /// key exists). Must run inside a transaction.
    pub fn insert(&mut self, rt: &mut TxRuntime, key: u64, fill: u64) {
        // BST descent.
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            let k = Self::get(rt, cur, OFF_KEY);
            if k == key {
                if Self::get(rt, cur, OFF_VAL) == 0 {
                    self.len += 1; // reviving a tombstone
                }
                let blob = self.write_value(rt, fill);
                Self::set(rt, cur, OFF_VAL, blob);
                return;
            }
            parent = cur;
            cur = if key < k {
                Self::left(rt, cur)
            } else {
                Self::right(rt, cur)
            };
        }

        // Attach the new red node (fresh memory: single write_new).
        let node = rt.alloc(NODE_BYTES);
        let blob = self.write_value(rt, fill);
        let mut img = [0u8; 48];
        img[0..8].copy_from_slice(&key.to_le_bytes());
        img[8..16].copy_from_slice(&blob.to_le_bytes());
        img[32..40].copy_from_slice(&parent.to_le_bytes());
        img[40..48].copy_from_slice(&RED.to_le_bytes());
        rt.write_new(node, &img);

        if parent == NIL {
            self.root = node;
        } else if key < Self::get(rt, parent, OFF_KEY) {
            Self::set(rt, parent, OFF_LEFT, node);
        } else {
            Self::set(rt, parent, OFF_RIGHT, node);
        }
        self.len += 1;
        self.fixup(rt, node);
    }

    fn fixup(&mut self, rt: &mut TxRuntime, mut z: u64) {
        loop {
            let z_parent = Self::parent(rt, z);
            if Self::color(rt, z_parent) != RED {
                break;
            }
            let zp = Self::parent(rt, z);
            let zpp = Self::parent(rt, zp);
            if zp == Self::left(rt, zpp) {
                let uncle = Self::right(rt, zpp);
                if Self::color(rt, uncle) == RED {
                    Self::set(rt, zp, OFF_COLOR, BLACK);
                    Self::set(rt, uncle, OFF_COLOR, BLACK);
                    Self::set(rt, zpp, OFF_COLOR, RED);
                    z = zpp;
                } else {
                    if z == Self::right(rt, zp) {
                        z = zp;
                        self.rotate_left(rt, z);
                    }
                    let zp = Self::parent(rt, z);
                    let zpp = Self::parent(rt, zp);
                    Self::set(rt, zp, OFF_COLOR, BLACK);
                    Self::set(rt, zpp, OFF_COLOR, RED);
                    self.rotate_right(rt, zpp);
                }
            } else {
                let uncle = Self::left(rt, zpp);
                if Self::color(rt, uncle) == RED {
                    Self::set(rt, zp, OFF_COLOR, BLACK);
                    Self::set(rt, uncle, OFF_COLOR, BLACK);
                    Self::set(rt, zpp, OFF_COLOR, RED);
                    z = zpp;
                } else {
                    if z == Self::left(rt, zp) {
                        z = zp;
                        self.rotate_right(rt, z);
                    }
                    let zp = Self::parent(rt, z);
                    let zpp = Self::parent(rt, zp);
                    Self::set(rt, zp, OFF_COLOR, BLACK);
                    Self::set(rt, zpp, OFF_COLOR, RED);
                    self.rotate_left(rt, zpp);
                }
            }
        }
        if Self::color(rt, self.root) == RED {
            Self::set(rt, self.root, OFF_COLOR, BLACK);
        }
    }

    /// Looks up `key`, returning its value-blob address (tombstoned keys
    /// report absent).
    pub fn lookup(&self, rt: &mut TxRuntime, key: u64) -> Option<u64> {
        let mut cur = self.root;
        while cur != NIL {
            let k = Self::get(rt, cur, OFF_KEY);
            if k == key {
                let v = Self::get(rt, cur, OFF_VAL);
                return (v != 0).then_some(v);
            }
            cur = if key < k {
                Self::left(rt, cur)
            } else {
                Self::right(rt, cur)
            };
        }
        None
    }

    /// Tombstone deletion: clears the value pointer (one logged 8 B
    /// store), leaving the node in place to keep the red-black shape —
    /// the standard trick for persistent trees where structural deletes
    /// would multiply the persist set. Returns `true` if `key` was live.
    /// Must run inside a transaction.
    pub fn delete(&mut self, rt: &mut TxRuntime, key: u64) -> bool {
        let mut cur = self.root;
        while cur != NIL {
            let k = Self::get(rt, cur, OFF_KEY);
            if k == key {
                if Self::get(rt, cur, OFF_VAL) == 0 {
                    return false;
                }
                Self::set(rt, cur, OFF_VAL, 0);
                self.len -= 1;
                return true;
            }
            cur = if key < k {
                Self::left(rt, cur)
            } else {
                Self::right(rt, cur)
            };
        }
        false
    }

    /// In-order keys (verification helper).
    pub fn keys_in_order(&self, rt: &mut TxRuntime) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = Self::left(rt, cur);
            }
            cur = stack.pop().expect("non-empty");
            out.push(Self::get(rt, cur, OFF_KEY));
            cur = Self::right(rt, cur);
        }
        out
    }

    /// Checks the red-black invariants; returns the black height.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated (test helper).
    pub fn check_invariants(&self, rt: &mut TxRuntime) -> usize {
        assert_eq!(Self::color(rt, self.root), BLACK, "root must be black");
        self.check_node(rt, self.root)
    }

    fn check_node(&self, rt: &mut TxRuntime, n: u64) -> usize {
        if n == NIL {
            return 1;
        }
        let l = Self::left(rt, n);
        let r = Self::right(rt, n);
        if Self::color(rt, n) == RED {
            assert_eq!(Self::color(rt, l), BLACK, "red node with red left child");
            assert_eq!(Self::color(rt, r), BLACK, "red node with red right child");
        }
        let lh = self.check_node(rt, l);
        let rh = self.check_node(rt, r);
        assert_eq!(lh, rh, "black heights differ");
        lh + usize::from(Self::color(rt, n) == BLACK)
    }
}

/// Runs the rbtree workload: untraced pre-population of `prepopulate`
/// keys, then per traced transaction one lookup plus one insert/update of
/// a `tx_size`-byte value.
pub fn run(
    rt: &mut TxRuntime,
    rng: &mut DetRng,
    prepopulate: usize,
    txs: usize,
    tx_size: usize,
    keyspace: u64,
    delete_per_mille: u16,
) {
    let mut tree = RbTree::create(tx_size);
    rt.set_tracing(false);
    for _ in 0..prepopulate {
        rt.begin();
        tree.insert(rt, rng.gen_range(keyspace), 0);
        rt.commit();
    }
    rt.set_tracing(true);
    for n in 0..txs {
        let key = rng.gen_range(keyspace);
        let probe = rng.gen_range(keyspace);
        rt.begin();
        let _ = tree.lookup(rt, probe);
        // Mixed mutation: a delete-flavoured transaction removes the key
        // if present, otherwise falls back to inserting it (so every
        // transaction mutates and the structure size stays balanced).
        let deleting =
            delete_per_mille > 0 && rng.gen_range(1000) < u64::from(delete_per_mille);
        if !(deleting && tree.delete(rt, key)) {
            tree.insert(rt, key, n as u64);
        }
        rt.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> TxRuntime {
        TxRuntime::new(0x200_0000)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut rt = rt();
        let mut t = RbTree::create(16);
        rt.begin();
        for k in [50u64, 20, 80, 10, 30, 70, 90] {
            t.insert(&mut rt, k, k);
        }
        rt.commit();
        for k in [50u64, 20, 80, 10, 30, 70, 90] {
            assert!(t.lookup(&mut rt, k).is_some());
        }
        assert!(t.lookup(&mut rt, 55).is_none());
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn invariants_hold_under_random_inserts() {
        let mut rt = rt();
        let mut rng = DetRng::seed_from(7);
        let mut t = RbTree::create(16);
        rt.begin();
        for _ in 0..500 {
            t.insert(&mut rt, rng.gen_range(10_000), 0);
        }
        rt.commit();
        t.check_invariants(&mut rt);
        let keys = t.keys_in_order(&mut rt);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        assert_eq!(keys.len(), t.len());
    }

    #[test]
    fn invariants_hold_under_sequential_inserts() {
        // Ascending inserts force the maximum number of rotations.
        let mut rt = rt();
        let mut t = RbTree::create(16);
        rt.begin();
        for k in 0..200 {
            t.insert(&mut rt, k, k);
        }
        rt.commit();
        t.check_invariants(&mut rt);
        assert_eq!(t.keys_in_order(&mut rt), (0..200).collect::<Vec<_>>());
        // A balanced tree of 200 nodes: black height far below 200.
        assert!(t.check_invariants(&mut rt) <= 10);
    }

    #[test]
    fn update_is_copy_on_write() {
        let mut rt = rt();
        let mut t = RbTree::create(16);
        rt.begin();
        t.insert(&mut rt, 5, 1);
        rt.commit();
        let v1 = t.lookup(&mut rt, 5).unwrap();
        rt.begin();
        t.insert(&mut rt, 5, 2);
        rt.commit();
        let v2 = t.lookup(&mut rt, 5).unwrap();
        assert_ne!(v1, v2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn tombstone_delete_and_revival() {
        let mut rt = rt();
        let mut t = RbTree::create(16);
        rt.begin();
        for k in 0..50u64 {
            t.insert(&mut rt, k, k);
        }
        assert!(t.delete(&mut rt, 25));
        assert!(!t.delete(&mut rt, 25));
        rt.commit();
        assert!(t.lookup(&mut rt, 25).is_none());
        assert_eq!(t.len(), 49);
        t.check_invariants(&mut rt); // shape untouched
        rt.begin();
        t.insert(&mut rt, 25, 1);
        rt.commit();
        assert!(t.lookup(&mut rt, 25).is_some());
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn rotations_emit_small_stores() {
        let mut rt = rt();
        let mut t = RbTree::create(16);
        rt.begin();
        for k in 0..50 {
            t.insert(&mut rt, k, k);
        }
        rt.commit();
        // The trace must contain plenty of 8-byte pointer stores (the
        // rotation/recolor signature of this workload).
        let trace = rt.into_trace();
        let small_stores = trace
            .iter()
            .filter(|op| matches!(op, crate::runtime::TraceOp::Store { len: 8, .. }))
            .count();
        assert!(small_stores > 50, "got {small_stores}");
    }

    #[test]
    fn run_commits_all_transactions() {
        let mut rt = rt();
        let mut rng = DetRng::seed_from(3);
        run(&mut rt, &mut rng, 10, 40, 64, 500, 0);
        assert_eq!(rt.stats().txs, 40);
    }
}
