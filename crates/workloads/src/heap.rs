//! A simulated persistent heap: sparse byte-addressable storage plus a
//! bump allocator.
//!
//! Workload data structures store their *real* bytes here (keys, pointers,
//! node contents), so inserts, lookups, rebalances and swaps genuinely
//! execute — the emitted store trace is the true memory behaviour of the
//! structure, not a synthetic approximation.

use thoth_sim_engine::FastMap;

/// Page size of the sparse backing store (an implementation detail, not
/// the architectural page size).
const PAGE: usize = 4096;

/// Alignment of every allocation. Using 16 keeps adjacent small nodes in
/// the same cache block, like a real PM allocator's small-object classes.
const ALIGN: u64 = 16;

/// A sparse, byte-addressable persistent heap with a bump allocator.
///
/// # Example
///
/// ```
/// use thoth_workloads::PersistentHeap;
///
/// let mut h = PersistentHeap::new(0x1000_0000);
/// let p = h.alloc(64);
/// h.write_u64(p, 0xdead_beef);
/// assert_eq!(h.read_u64(p), 0xdead_beef);
/// ```
#[derive(Debug, Clone)]
pub struct PersistentHeap {
    base: u64,
    brk: u64,
    pages: FastMap<u64, Vec<u8>>,
}

impl PersistentHeap {
    /// Creates an empty heap whose allocations start at `base`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        PersistentHeap {
            base,
            brk: base,
            pages: FastMap::default(),
        }
    }

    /// First address of the heap.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One past the highest allocated address.
    #[must_use]
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Total bytes allocated so far.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.brk - self.base
    }

    /// Allocates `size` bytes (16-byte aligned), returning the address.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, size: u64) -> u64 {
        assert!(size > 0, "zero-sized allocation");
        let addr = self.brk;
        let size = size.div_ceil(ALIGN) * ALIGN;
        self.brk += size;
        addr
    }

    /// Reads `len` bytes at `addr` (untouched bytes read as zero).
    #[must_use]
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut done = 0;
        while done < len {
            let a = addr + done as u64;
            let page = a / PAGE as u64;
            let off = (a % PAGE as u64) as usize;
            let take = (len - done).min(PAGE - off);
            if let Some(p) = self.pages.get(&page) {
                out[done..done + take].copy_from_slice(&p[off..off + take]);
            }
            done += take;
        }
        out
    }

    /// Writes `bytes` at `addr`.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) {
        let mut done = 0;
        while done < bytes.len() {
            let a = addr + done as u64;
            let page = a / PAGE as u64;
            let off = (a % PAGE as u64) as usize;
            let take = (bytes.len() - done).min(PAGE - off);
            let p = self.pages.entry(page).or_insert_with(|| vec![0u8; PAGE]);
            p[off..off + take].copy_from_slice(&bytes[done..done + take]);
            done += take;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read(addr, 8).try_into().expect("8 bytes"))
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Number of materialized backing pages (memory footprint check).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_monotonic_and_aligned() {
        let mut h = PersistentHeap::new(0x1000);
        let a = h.alloc(10);
        let b = h.alloc(1);
        let c = h.alloc(100);
        assert_eq!(a, 0x1000);
        assert_eq!(b, 0x1010, "10 rounds to 16");
        assert_eq!(c, 0x1020);
        assert!(a.is_multiple_of(16) && b.is_multiple_of(16) && c.is_multiple_of(16));
        assert_eq!(h.allocated(), 0x20 + 112);
    }

    #[test]
    fn read_write_roundtrip_within_page() {
        let mut h = PersistentHeap::new(0);
        h.write(100, b"hello");
        assert_eq!(h.read(100, 5), b"hello");
        assert_eq!(h.read(99, 1), [0], "neighbours untouched");
    }

    #[test]
    fn read_write_across_page_boundary() {
        let mut h = PersistentHeap::new(0);
        let addr = PAGE as u64 - 3;
        h.write(addr, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(h.read(addr, 6), [1, 2, 3, 4, 5, 6]);
        assert_eq!(h.resident_pages(), 2);
    }

    #[test]
    fn untouched_reads_zero() {
        let h = PersistentHeap::new(0);
        assert_eq!(h.read(12345, 16), vec![0; 16]);
        assert_eq!(h.read_u64(999), 0);
    }

    #[test]
    fn u64_helpers() {
        let mut h = PersistentHeap::new(0);
        h.write_u64(8, u64::MAX);
        h.write_u64(16, 0x0102_0304_0506_0708);
        assert_eq!(h.read_u64(8), u64::MAX);
        assert_eq!(h.read_u64(16), 0x0102_0304_0506_0708);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_alloc_panics() {
        PersistentHeap::new(0).alloc(0);
    }
}
