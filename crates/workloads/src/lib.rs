//! WHISPER-style persistent-memory workloads (Section V-A of the paper).
//!
//! The paper evaluates Thoth with four database benchmarks from the
//! WHISPER suite plus an in-house *Random Array Swap*. This crate
//! re-implements that workload set from scratch as real data structures
//! operating on a simulated persistent heap:
//!
//! * [`btree`] — a B-tree keyed by `u64` with blob values,
//! * [`rbtree`] — a red-black tree (scattered small updates from
//!   rotations and recoloring),
//! * [`hashmap`] — a chained hash table,
//! * [`ctree`] — a crit-bit (radix) tree, WHISPER's `ctree`,
//! * [`swap`] — the in-house benchmark: each transaction swaps a
//!   transaction-sized segment between two contiguous arrays.
//!
//! Every workload runs inside an undo-logging transaction runtime
//! ([`runtime::TxRuntime`]) that emits a *persistent-store trace*: the
//! exact sequence of persistent stores (log appends, data writes, commit
//! records) and read accesses each transaction performs, with transaction
//! barriers. The full-system simulator replays these traces through the
//! secure-memory pipeline; transaction size is command-line configurable
//! exactly as in the paper (128/512/1024/2048 B).

#![warn(missing_docs)]

pub mod btree;
pub mod corpus;
pub mod ctree;
pub mod fuzz;
pub mod hashmap;
pub mod heap;
pub mod queue;
pub mod rbtree;
pub mod runtime;
pub mod service;
pub mod spec;
pub mod swap;
pub mod trace_io;

pub use corpus::{BugSite, RaceAlignment, SeededBug, SeededVariant};
pub use fuzz::{generate_fuzz, FuzzSpec};
pub use heap::PersistentHeap;
pub use runtime::{AnnotatedTrace, CoreTrace, MultiCoreTrace, OpClass, TraceOp, TxRuntime};
pub use service::{
    generate_service, MixKind, MixStats, ReqKind, RequestMeta, ServiceSpec, ServiceTrace,
};
pub use spec::{WorkloadConfig, WorkloadKind};

// Trace import/export lives in [`trace_io`].
