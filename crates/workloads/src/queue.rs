//! A persistent ring queue — an *extension* workload beyond the paper's
//! five (WHISPER's suite also contains queue-like services such as
//! `echo`). Producer/consumer operations against a fixed ring with
//! persistent head/tail indices; the index publish is the linearization
//! point, so slots are written before the index (no undo log needed for
//! enqueues into unpublished slots).
//!
//! Its store stream is the most temporally concentrated of all the
//! workloads — two hot index cells plus a sliding window of slots —
//! making it a stress test for WPQ/PCB coalescing.

use crate::runtime::TxRuntime;
use thoth_sim_engine::DetRng;

/// A persistent single-producer ring queue.
#[derive(Debug)]
pub struct PersistentQueue {
    slots: u64,
    slot_size: usize,
    data_base: u64,
    head_cell: u64,
    tail_cell: u64,
}

impl PersistentQueue {
    /// Allocates a queue of `slots` entries of `slot_size` bytes and
    /// persists zeroed indices, inside an open transaction.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `slot_size` is zero.
    pub fn create(rt: &mut TxRuntime, slots: u64, slot_size: usize) -> Self {
        assert!(slots > 0 && slot_size > 0);
        let data_base = rt.alloc(slots * slot_size as u64);
        let head_cell = rt.alloc(8);
        let tail_cell = rt.alloc(8);
        rt.write_new_u64(head_cell, 0);
        rt.write_new_u64(tail_cell, 0);
        PersistentQueue {
            slots,
            slot_size,
            data_base,
            head_cell,
            tail_cell,
        }
    }

    /// Entries currently queued.
    pub fn len(&self, rt: &mut TxRuntime) -> u64 {
        rt.read_u64(self.head_cell) - rt.read_u64(self.tail_cell)
    }

    /// Returns `true` if the queue holds no entries.
    pub fn is_empty(&self, rt: &mut TxRuntime) -> bool {
        self.len(rt) == 0
    }

    /// Enqueues `payload` (truncated to the slot size). Returns `false`
    /// if the ring is full. Must run inside a transaction.
    pub fn enqueue(&self, rt: &mut TxRuntime, payload: &[u8]) -> bool {
        let head = rt.read_u64(self.head_cell);
        let tail = rt.read_u64(self.tail_cell);
        if head - tail >= self.slots {
            return false;
        }
        let slot = self.data_base + (head % self.slots) * self.slot_size as u64;
        // Slot first (unpublished memory: no undo needed), then the
        // logged index publish.
        rt.write_new(slot, &payload[..payload.len().min(self.slot_size)]);
        rt.write_u64(self.head_cell, head + 1);
        true
    }

    /// Dequeues the oldest entry, or `None` if empty. Must run inside a
    /// transaction.
    pub fn dequeue(&self, rt: &mut TxRuntime) -> Option<Vec<u8>> {
        let head = rt.read_u64(self.head_cell);
        let tail = rt.read_u64(self.tail_cell);
        if tail == head {
            return None;
        }
        let slot = self.data_base + (tail % self.slots) * self.slot_size as u64;
        let v = rt.read(slot, self.slot_size);
        rt.write_u64(self.tail_cell, tail + 1);
        Some(v)
    }
}

/// Runs the queue workload: a bursty 2:1 enqueue/dequeue mix, each
/// operation a durable transaction with `tx_size`-byte payloads; the ring
/// holds `slots` entries.
pub fn run(rt: &mut TxRuntime, rng: &mut DetRng, txs: usize, tx_size: usize, slots: u64) {
    rt.set_tracing(false);
    rt.begin();
    let q = PersistentQueue::create(rt, slots.max(2), tx_size);
    rt.commit();
    rt.set_tracing(true);
    let mut payload = vec![0u8; tx_size];
    for _ in 0..txs {
        rt.begin();
        if rng.gen_bool(2.0 / 3.0) {
            rng.fill_bytes(&mut payload);
            if !q.enqueue(rt, &payload) {
                let _ = q.dequeue(rt); // full: make room instead
            }
        } else if q.dequeue(rt).is_none() {
            rng.fill_bytes(&mut payload);
            let _ = q.enqueue(rt, &payload);
        }
        rt.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(slots: u64, size: usize) -> (TxRuntime, PersistentQueue) {
        let mut rt = TxRuntime::new(0x600_0000);
        rt.begin();
        let q = PersistentQueue::create(&mut rt, slots, size);
        rt.commit();
        (rt, q)
    }

    #[test]
    fn fifo_order() {
        let (mut rt, q) = fresh(8, 16);
        rt.begin();
        for i in 0..5u8 {
            assert!(q.enqueue(&mut rt, &[i; 16]));
        }
        rt.commit();
        assert_eq!(q.len(&mut rt), 5);
        rt.begin();
        for i in 0..5u8 {
            assert_eq!(q.dequeue(&mut rt), Some(vec![i; 16]));
        }
        assert_eq!(q.dequeue(&mut rt), None);
        rt.commit();
        assert!(q.is_empty(&mut rt));
    }

    #[test]
    fn full_ring_rejects() {
        let (mut rt, q) = fresh(2, 8);
        rt.begin();
        assert!(q.enqueue(&mut rt, &[1; 8]));
        assert!(q.enqueue(&mut rt, &[2; 8]));
        assert!(!q.enqueue(&mut rt, &[3; 8]), "full");
        assert_eq!(q.dequeue(&mut rt), Some(vec![1; 8]));
        assert!(q.enqueue(&mut rt, &[3; 8]), "space again");
        rt.commit();
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut rt, q) = fresh(4, 8);
        for round in 0..50u8 {
            rt.begin();
            assert!(q.enqueue(&mut rt, &[round; 8]));
            assert_eq!(q.dequeue(&mut rt), Some(vec![round; 8]));
            rt.commit();
        }
        assert!(q.is_empty(&mut rt));
    }

    #[test]
    fn run_commits_all_and_stays_bounded() {
        let mut rt = TxRuntime::new(0);
        let mut rng = DetRng::seed_from(17);
        run(&mut rt, &mut rng, 200, 64, 16);
        assert_eq!(rt.stats().txs, 200);
        // Ring data: 16 slots x 64 B; no growth beyond log + ring + cells.
        assert!(rt.heap().allocated() < (1 << 20) + 16 * 64 + 64);
    }
}
