//! Open-loop multi-tenant KV service front-end over the Thoth simulator.
//!
//! The paper's evaluation is closed-loop: each core issues its next
//! transaction as soon as the previous one retires, so the cost of a
//! secure-memory mechanism shows up as *throughput*. A service front-end
//! lives in the open-loop regime instead — requests arrive on a schedule
//! the memory system does not control, and the cost shows up as
//! *latency*, specifically the tail of the persist-ACK latency measured
//! from arrival (queueing included). Once the offered load approaches the
//! machine's service capacity, queues build and the p99/p999 curve bends
//! sharply upward — the saturation "hockey stick" this crate exists to
//! chart, per mechanism.
//!
//! The pieces:
//!
//! * `thoth-workloads::service` generates the deterministic open-loop
//!   trace: Poisson arrivals, Zipfian keys, YCSB A/B/F mixes, many
//!   logical tenants (each a persistent hash table) multiplexed over the
//!   simulated cores;
//! * `thoth-sim::SecureNvm::run_service` replays it with arrival gating
//!   and records per-request persist-ACK latency into log2-bucket
//!   histograms;
//! * this crate sweeps *offered load* across *mechanisms*, sharing the
//!   (mode-independent) trace per load point, and extracts
//!   p50/p99/p999 via `Hist::quantile`.
//!
//! # Example
//!
//! ```
//! use thoth_service::{quick_spec, run_modes, sweep_modes};
//!
//! let mut spec = quick_spec();
//! spec.mean_interarrival_cycles = 20_000.0; // light load
//! let points = run_modes(&spec, &sweep_modes());
//! assert_eq!(points.len(), 3);
//! assert!(points.iter().all(|p| p.p50 <= p.p99 && p.p99 <= p.p999));
//! ```

#![warn(missing_docs)]

use thoth_sim::{Mode, SecureNvm, SimConfig};
use thoth_workloads::service::{generate_service, ServiceSpec, ServiceTrace};

/// One (offered load, mechanism) cell of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointResult {
    /// Mechanism label (`"baseline"`, `"thoth-wtsc"`, `"thoth-wtbc"`).
    pub mode: &'static str,
    /// Mean inter-arrival gap per core, in cycles (the load knob).
    pub mean_interarrival_cycles: f64,
    /// Offered load in requests per million cycles across all cores.
    pub offered_per_mcycle: f64,
    /// Requests completed (warm-up included).
    pub completed: u64,
    /// Measured requests (the latency histogram population).
    pub measured: u64,
    /// Median persist-ACK latency from arrival, in cycles.
    pub p50: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// 99.9th-percentile latency.
    pub p999: f64,
    /// Mean latency.
    pub mean: f64,
    /// Largest observed latency.
    pub max: u64,
    /// 99th-percentile latency of read-only requests.
    pub p99_read: f64,
    /// 99th-percentile latency of mutating requests.
    pub p99_mutate: f64,
    /// Achieved throughput: measured requests per million cycles.
    pub achieved_per_mcycle: f64,
    /// Simulated cycles of the run (the machine's measured phase).
    pub sim_cycles: u64,
}

/// The mechanisms the service sweep compares (the paper's headline trio).
#[must_use]
pub fn sweep_modes() -> [Mode; 3] {
    [Mode::baseline(), Mode::thoth_wtsc(), Mode::thoth_wtbc()]
}

/// The machine configuration a service run uses: the paper's Table I
/// defaults at 128 B blocks. The service trace carries no closed-loop
/// warm-up transactions, so PUB pre-fill (which feeds on warm-up partial
/// updates) is inert; warm-up happens at the request level instead.
#[must_use]
pub fn service_sim_config(mode: Mode) -> SimConfig {
    SimConfig::paper_default(mode, 128)
}

/// A small spec for tests and `--quick` CI gates: 2 cores, 6 tenants,
/// few hundred requests.
#[must_use]
pub fn quick_spec() -> ServiceSpec {
    let mut spec = ServiceSpec::default_spec();
    spec.cores = 2;
    spec.tenants = 6;
    spec.requests_per_core = 150;
    spec.warmup_requests_per_core = 30;
    spec.keys_per_tenant = 512;
    spec.prepopulate_per_tenant = 128;
    spec
}

/// Runs one mechanism over a pre-generated trace.
#[must_use]
pub fn run_point(spec: &ServiceSpec, trace: &ServiceTrace, mode: Mode) -> PointResult {
    let mut machine = SecureNvm::new(service_sim_config(mode));
    let (sim, svc) = machine.run_service(trace);
    let (p50, p99, p999) = svc.latency_quantiles();
    let achieved = if sim.total_cycles == 0 {
        0.0
    } else {
        svc.measured as f64 * 1.0e6 / sim.total_cycles as f64
    };
    PointResult {
        mode: mode.label(),
        mean_interarrival_cycles: spec.mean_interarrival_cycles,
        offered_per_mcycle: spec.offered_per_mcycle(),
        completed: svc.completed,
        measured: svc.measured,
        p50,
        p99,
        p999,
        mean: svc.latency.mean(),
        max: svc.latency.max(),
        p99_read: svc.latency_read.quantile(0.99),
        p99_mutate: svc.latency_mutate.quantile(0.99),
        achieved_per_mcycle: achieved,
        sim_cycles: sim.total_cycles,
    }
}

/// Runs every mechanism at one offered load, sharing the generated trace
/// (arrivals and keys are mechanism-independent, so every mode serves
/// byte-identical request streams).
#[must_use]
pub fn run_modes(spec: &ServiceSpec, modes: &[Mode]) -> Vec<PointResult> {
    let trace = generate_service(spec);
    modes
        .iter()
        .map(|&mode| run_point(spec, &trace, mode))
        .collect()
}

/// Sweeps offered load (one spec per mean inter-arrival gap) across
/// `modes`. Returns one row of [`PointResult`]s per load point, lightest
/// load first, in the given mode order.
#[must_use]
pub fn sweep(base: &ServiceSpec, mean_gaps: &[f64], modes: &[Mode]) -> Vec<Vec<PointResult>> {
    let mut gaps: Vec<f64> = mean_gaps.to_vec();
    gaps.sort_by(|a, b| b.partial_cmp(a).expect("finite load points"));
    gaps.iter()
        .map(|&gap| {
            let mut spec = *base;
            spec.mean_interarrival_cycles = gap;
            run_modes(&spec, modes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let spec = quick_spec();
        let a = run_modes(&spec, &[Mode::thoth_wtsc()]);
        let b = run_modes(&spec, &[Mode::thoth_wtsc()]);
        assert_eq!(a, b);
    }

    #[test]
    fn quantiles_are_monotone_and_populated() {
        let points = run_modes(&quick_spec(), &sweep_modes());
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.measured > 0, "{}: no measured requests", p.mode);
            assert!(p.p50 <= p.p99, "{}: p50 {} > p99 {}", p.mode, p.p50, p.p99);
            assert!(p.p99 <= p.p999, "{}: p99 {} > p999 {}", p.mode, p.p99, p.p999);
            assert!(p.p999.is_finite());
            assert!(p.p999 <= p.max as f64 + 1.0);
        }
    }

    #[test]
    fn open_loop_queueing_shows_a_knee() {
        // The defining open-loop property: past saturation, latency is
        // dominated by queueing delay and explodes, while a light load
        // stays near raw service latency. 60x the load must cost far more
        // than 60x... no — the point is the *latency* blows up although
        // each request does identical work.
        let mut light = quick_spec();
        light.mean_interarrival_cycles = 60_000.0;
        let mut heavy = quick_spec();
        heavy.mean_interarrival_cycles = 500.0;
        let l = run_modes(&light, &[Mode::thoth_wtsc()]);
        let h = run_modes(&heavy, &[Mode::thoth_wtsc()]);
        assert!(
            h[0].p99 > 5.0 * l[0].p99,
            "overload p99 {} should dwarf light-load p99 {}",
            h[0].p99,
            l[0].p99
        );
        // Under light load the p50 request is served without queueing:
        // its latency is bounded by a small multiple of the heavy-load
        // p50, which measures raw service + queueing.
        assert!(l[0].p50 < h[0].p50);
    }

    #[test]
    fn mode_rows_share_the_request_stream() {
        let points = run_modes(&quick_spec(), &sweep_modes());
        assert!(points.windows(2).all(|w| {
            w[0].completed == w[1].completed && w[0].measured == w[1].measured
        }));
    }

    #[test]
    fn sweep_orders_light_to_heavy() {
        let rows = sweep(
            &quick_spec(),
            &[2_000.0, 30_000.0],
            &[Mode::thoth_wtsc()],
        );
        assert_eq!(rows.len(), 2);
        assert!(rows[0][0].offered_per_mcycle < rows[1][0].offered_per_mcycle);
        assert!(rows[0][0].p99 <= rows[1][0].p99, "load can only hurt the tail");
    }
}
