//! Minimal JSON utilities: string escaping for the trace writer and a
//! full-syntax validator used by the structural tests that assert the
//! exported Chrome trace is loadable (RFC 8259 grammar, no extensions).

/// Escapes a string for embedding inside a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `text` is one syntactically correct JSON value.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!(
                                            "bad \\u escape at byte {}",
                                            self.pos
                                        ));
                                    }
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("expected a digit at byte {}", self.pos)),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("expected a fraction digit at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("expected an exponent digit at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e+3",
            "\"a\\nb\\u00e9\"",
            "[]",
            "{}",
            "[1, {\"a\": [false, null]}, \"x\"]",
            "{\"traceEvents\": [{\"ph\": \"X\", \"ts\": 0, \"dur\": 5}]}",
        ] {
            assert!(validate(doc).is_ok(), "should accept {doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{a: 1}",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "nulll",
            "[1] [2]",
            "\"bad \\x escape\"",
        ] {
            assert!(validate(doc).is_err(), "should reject {doc}");
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let quoted = format!("\"{}\"", escape("x\t\"y\"\r\n\\"));
        assert!(validate(&quoted).is_ok());
    }
}
