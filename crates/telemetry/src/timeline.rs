//! Epoch-sampled time series emitted as CSV.
//!
//! A [`Timeline`] is a fixed set of named columns plus one row per sample
//! epoch. Values are `f64` so the same table can carry raw occupancies,
//! fill fractions in `[0, 1]`, and cumulative byte counts.

/// A fixed-column, append-only time series.
#[derive(Debug, Clone)]
pub struct Timeline {
    columns: Vec<&'static str>,
    rows: Vec<(u64, Vec<f64>)>,
}

impl Timeline {
    /// A timeline with the given column names (cycle column is implicit).
    #[must_use]
    pub fn new(columns: &[&'static str]) -> Self {
        Timeline {
            columns: columns.to_vec(),
            rows: Vec::new(),
        }
    }

    /// Appends one sample row at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` does not match the column count.
    pub fn push(&mut self, cycle: u64, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "timeline row width must match columns"
        );
        self.rows.push((cycle, values.to_vec()));
    }

    /// The column names (excluding the implicit `cycle` column).
    #[must_use]
    pub fn columns(&self) -> &[&'static str] {
        &self.columns
    }

    /// The sampled rows as `(cycle, values)`.
    #[must_use]
    pub fn rows(&self) -> &[(u64, Vec<f64>)] {
        &self.rows
    }

    /// Number of sampled rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were sampled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value of column `name` in the last row, if any.
    #[must_use]
    pub fn last_value(&self, name: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| *c == name)?;
        self.rows.last().map(|(_, vals)| vals[col])
    }

    /// Renders `cycle,<col0>,<col1>,...` CSV. Values print with enough
    /// precision to round-trip fractions while keeping integers clean.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut s = String::from("cycle");
        for c in &self.columns {
            s.push(',');
            s.push_str(c);
        }
        s.push('\n');
        for (cycle, vals) in &self.rows {
            s.push_str(&cycle.to_string());
            for v in vals {
                s.push(',');
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    s.push_str(&format!("{}", *v as i64));
                } else {
                    s.push_str(&format!("{v:.6}"));
                }
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Timeline::new(&["wpq_occ", "pub_fill"]);
        t.push(0, &[3.0, 0.25]);
        t.push(10_000, &[7.0, 0.5]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("cycle,wpq_occ,pub_fill"));
        assert_eq!(lines.next(), Some("0,3,0.250000"));
        assert_eq!(lines.next(), Some("10000,7,0.500000"));
        assert_eq!(lines.next(), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.last_value("pub_fill"), Some(0.5));
        assert_eq!(t.last_value("missing"), None);
    }

    #[test]
    #[should_panic(expected = "timeline row width")]
    fn wrong_width_panics() {
        let mut t = Timeline::new(&["a", "b"]);
        t.push(0, &[1.0]);
    }
}
