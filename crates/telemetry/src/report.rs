//! The live sink a run records into, and the immutable report it yields.
//!
//! [`TelemetrySink`] bundles the registry, the epoch timeline, and the
//! optional tracer; the simulator owns one only when telemetry is
//! enabled, so every hook is gated by a single `Option` check.
//! [`TelemetrySink::finish`] freezes it into a [`TelemetryReport`] whose
//! CSV/JSON renderers the experiments runner writes to
//! `results/telemetry/`.

use crate::registry::Registry;
use crate::timeline::Timeline;
use crate::tracer::SpanTracer;
use crate::{QueueProbe, TelemetryConfig};

/// End-of-run summary of one [`QueueProbe`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSummary {
    /// Queue name.
    pub name: &'static str,
    /// Queue capacity.
    pub capacity: u64,
    /// Highest recorded occupancy.
    pub peak: u64,
    /// Number of occupancy samples.
    pub samples: u64,
    /// Mean recorded occupancy.
    pub mean: f64,
}

/// The mutable recording state for one instrumented run.
#[derive(Debug)]
pub struct TelemetrySink {
    config: TelemetryConfig,
    /// Counters and histograms.
    pub registry: Registry,
    /// Epoch-sampled series.
    pub timeline: Timeline,
    /// Span tracer (present only when [`TelemetryConfig::trace`] is set).
    pub tracer: Option<SpanTracer>,
    next_sample: u64,
    probes: Vec<ProbeSummary>,
}

impl TelemetrySink {
    /// A sink for `config` with the given timeline columns.
    #[must_use]
    pub fn new(config: TelemetryConfig, columns: &[&'static str]) -> Self {
        TelemetrySink {
            config,
            registry: Registry::new(),
            timeline: Timeline::new(columns),
            tracer: config.trace.then(|| SpanTracer::new(config.trace_cap)),
            next_sample: 0,
            probes: Vec::new(),
        }
    }

    /// The configuration this sink was created with.
    #[must_use]
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// `true` when a timeline sample is due at `now`.
    #[must_use]
    pub fn sample_due(&self, now: u64) -> bool {
        now >= self.next_sample
    }

    /// Advances the sampling deadline past `now` (call after pushing the
    /// row for this epoch).
    pub fn advance_epoch(&mut self, now: u64) {
        let epoch = self.config.epoch_cycles.max(1);
        while self.next_sample <= now {
            self.next_sample += epoch;
        }
    }

    /// Records a probe's end-of-run summary (harvest step).
    pub fn absorb_probe(&mut self, probe: &QueueProbe) {
        self.probes.push(ProbeSummary {
            name: probe.name(),
            capacity: probe.capacity(),
            peak: probe.peak(),
            samples: probe.samples(),
            mean: probe.hist().mean(),
        });
    }

    /// Freezes the sink into an immutable report.
    #[must_use]
    pub fn finish(self) -> TelemetryReport {
        let (trace_json, trace_dropped, trace_well_nested) = match self.tracer {
            Some(t) => (Some(t.to_trace_json()), t.dropped(), t.well_nested()),
            None => (None, 0, true),
        };
        TelemetryReport {
            registry: self.registry,
            timeline: self.timeline,
            probes: self.probes,
            trace_json,
            trace_dropped,
            trace_well_nested,
        }
    }
}

/// Everything one instrumented run recorded.
#[derive(Debug)]
pub struct TelemetryReport {
    /// Final counter and histogram values.
    pub registry: Registry,
    /// The epoch-sampled timeline.
    pub timeline: Timeline,
    /// Per-queue occupancy summaries.
    pub probes: Vec<ProbeSummary>,
    /// Chrome `trace_event` JSON, when tracing was on.
    pub trace_json: Option<String>,
    /// Events the tracer discarded after hitting its cap.
    pub trace_dropped: u64,
    /// Verdict of [`SpanTracer::well_nested`] at freeze time (`true` when
    /// tracing was off) — spans on every lane were properly nested with
    /// per-lane monotone timestamps.
    pub trace_well_nested: bool,
}

impl TelemetryReport {
    /// Probe summaries as CSV (`queue,capacity,peak,samples,mean`).
    #[must_use]
    pub fn probes_csv(&self) -> String {
        let mut s = String::from("queue,capacity,peak,samples,mean\n");
        for p in &self.probes {
            s.push_str(&format!(
                "{},{},{},{},{:.3}\n",
                p.name, p.capacity, p.peak, p.samples, p.mean
            ));
        }
        s
    }

    /// Writes the report's artifacts into `dir` as
    /// `<prefix>-timeline.csv`, `<prefix>-counters.csv`,
    /// `<prefix>-hists.csv`, `<prefix>-queues.csv`, and (when tracing)
    /// `<prefix>-trace.json`. Returns the file names written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_dir(
        &self,
        dir: &std::path::Path,
        prefix: &str,
    ) -> std::io::Result<Vec<String>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let mut emit = |name: String, body: &str| -> std::io::Result<()> {
            std::fs::write(dir.join(&name), body)?;
            written.push(name);
            Ok(())
        };
        emit(format!("{prefix}-timeline.csv"), &self.timeline.to_csv())?;
        emit(format!("{prefix}-counters.csv"), &self.registry.counters_csv())?;
        emit(format!("{prefix}-hists.csv"), &self.registry.hists_csv())?;
        emit(format!("{prefix}-queues.csv"), &self.probes_csv())?;
        if let Some(trace) = &self.trace_json {
            emit(format!("{prefix}-trace.json"), trace)?;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_advancing() {
        let config = TelemetryConfig {
            enabled: true,
            epoch_cycles: 100,
            ..TelemetryConfig::default()
        };
        let mut sink = TelemetrySink::new(config, &["x"]);
        assert!(sink.sample_due(0));
        sink.advance_epoch(0);
        assert!(!sink.sample_due(99));
        assert!(sink.sample_due(100));
        sink.advance_epoch(357);
        assert!(!sink.sample_due(399));
        assert!(sink.sample_due(400));
    }

    #[test]
    fn finish_carries_probe_and_trace_state() {
        let mut sink = TelemetrySink::new(TelemetryConfig::full(), &["occ"]);
        let mut probe = QueueProbe::new("wpq", 64);
        probe.record(5);
        probe.record(9);
        sink.absorb_probe(&probe);
        sink.timeline.push(0, &[5.0]);
        let lane = sink.tracer.as_mut().expect("tracing on").lane("memctrl");
        sink.tracer.as_mut().expect("tracing on").instant(lane, "tick", 3);
        let report = sink.finish();
        assert_eq!(report.probes.len(), 1);
        assert_eq!(report.probes[0].peak, 9);
        assert!(report.probes_csv().contains("wpq,64,9,2,7.000\n"));
        let trace = report.trace_json.expect("trace present");
        crate::json::validate(&trace).expect("valid trace JSON");
        assert_eq!(report.trace_dropped, 0);
        assert!(report.trace_well_nested);
    }

    #[test]
    fn counters_only_has_no_tracer() {
        let sink = TelemetrySink::new(TelemetryConfig::counters_only(), &[]);
        assert!(sink.tracer.is_none());
        assert!(sink.finish().trace_json.is_none());
    }
}
