//! `thoth-telemetry` — the opt-in observability layer.
//!
//! The paper's headline claims are statements about *internal* dynamics:
//! WPQ occupancy under ADR pressure (Fig. 12), PUB fill and eviction
//! filtering under WTSC/WTBC (Fig. 3), and metadata write amplification
//! (Fig. 9). The simulator's end-of-run aggregates show *that* a
//! configuration wins; this crate makes visible *why*, in the style of
//! gem5's stats framework:
//!
//! * [`Registry`] — typed counters and log2-bucketed histograms with a
//!   dense, `&'static str`-keyed registry (no std hashing — this crate is
//!   on the hot path when enabled and is lint-listed as a hot crate),
//! * [`Timeline`] — epoch-sampled series (occupancies, fill fractions,
//!   per-mechanism persist bytes) emitted as CSV,
//! * [`SpanTracer`] — a span/instant/async event tracer exporting Chrome
//!   `trace_event` JSON loadable in `chrome://tracing` / Perfetto,
//! * [`QueueProbe`] — an embeddable occupancy recorder component crates
//!   (`thoth-memctrl`, `thoth-core`, `thoth-nvm`) hold as
//!   `Option<QueueProbe>`: disabled runs pay one branch, nothing else,
//! * [`progress::ProgressSink`] — the structured progress channel the
//!   experiment runner logs through instead of printing directly.
//!
//! Everything is off by default ([`TelemetryConfig::default`]); the
//! simulator's differential test (`telemetry_neutrality`) proves that
//! instrumented and plain runs produce bit-identical reports.

#![warn(missing_docs)]

pub mod json;
pub mod probe;
pub mod progress;
pub mod registry;
pub mod report;
pub mod timeline;
pub mod tracer;

pub use probe::QueueProbe;
pub use progress::ProgressSink;
pub use registry::{CounterId, Hist, HistId, Registry};
pub use report::{ProbeSummary, TelemetryReport, TelemetrySink};
pub use timeline::Timeline;
pub use tracer::{Span, SpanKind, SpanTracer};

/// What the instrumentation layer records. Off by default; every hook in
/// the simulator checks its sink before doing any work, so a disabled run
/// is byte-identical to an uninstrumented one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. `false` means no sink is installed at all.
    pub enabled: bool,
    /// Timeline sampling period in core cycles.
    pub epoch_cycles: u64,
    /// Record the span tracer (per-core op spans, WPQ residency arrows,
    /// PUB append/evict instants).
    pub trace: bool,
    /// Hard cap on recorded trace events; once reached, further events
    /// are counted as dropped instead of stored (bounded memory).
    pub trace_cap: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            epoch_cycles: 10_000,
            trace: false,
            trace_cap: 200_000,
        }
    }
}

impl TelemetryConfig {
    /// Everything on, at the default epoch.
    #[must_use]
    pub fn full() -> Self {
        TelemetryConfig {
            enabled: true,
            trace: true,
            ..TelemetryConfig::default()
        }
    }

    /// Counters and timelines on, tracer off (cheapest useful setting).
    #[must_use]
    pub fn counters_only() -> Self {
        TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let c = TelemetryConfig::default();
        assert!(!c.enabled);
        assert!(!c.trace);
        assert!(c.epoch_cycles > 0);
    }

    #[test]
    fn presets_enable() {
        assert!(TelemetryConfig::full().enabled);
        assert!(TelemetryConfig::full().trace);
        assert!(TelemetryConfig::counters_only().enabled);
        assert!(!TelemetryConfig::counters_only().trace);
    }
}
