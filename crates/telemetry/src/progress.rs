//! Structured progress reporting for long-running job batches.
//!
//! The experiments runner used to format its per-job progress lines
//! inline with `eprintln!`; routing them through a [`ProgressSink`]
//! keeps the format in one testable place and gives callers a capture
//! mode (tests assert on the exact lines instead of scraping stderr).

use std::fmt::Debug;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Process-wide count of jobs the experiments runner's longest-
/// processing-time-first scheduler moved ahead of their submission slot.
/// Lives here (not in the runner) so instrumented runs can harvest it as
/// the `jobs_lpt_reordered` telemetry counter without a dependency from
/// the simulator on the experiment harness.
static JOBS_LPT_REORDERED: AtomicU64 = AtomicU64::new(0);

/// Records `n` more LPT-reordered jobs.
pub fn note_jobs_lpt_reordered(n: u64) {
    // Monotone statistic harvested once at session end; orders nothing.
    JOBS_LPT_REORDERED.fetch_add(n, Ordering::Relaxed); // thoth-lint: allow(relaxed-atomic)
}

/// Total jobs moved by the LPT scheduler since process start.
#[must_use]
pub fn jobs_lpt_reordered() -> u64 {
    JOBS_LPT_REORDERED.load(Ordering::Relaxed) // thoth-lint: allow(relaxed-atomic)
}

/// Where progress lines go.
#[derive(Debug)]
pub enum ProgressSink {
    /// Write each line to stderr as it arrives (the CLI default).
    Stderr,
    /// Collect lines in memory (for tests and quiet embedders).
    Capture(Vec<String>),
}

impl ProgressSink {
    /// Reports one finished job out of `total`. `estimate` is the
    /// scheduler's predicted wall time for the job (from its cost model,
    /// calibrated on the batch's completed jobs); `None` before any
    /// calibration exists. Printing both makes cost-model drift visible
    /// in the progress stream itself.
    pub fn job_done<K: Debug>(
        &mut self,
        done: usize,
        total: usize,
        key: &K,
        elapsed: Duration,
        estimate: Option<Duration>,
    ) {
        let est = match estimate {
            Some(e) => format!("est {e:.2?}"),
            None => "est n/a".to_owned(),
        };
        self.line(format!(
            "[thoth-experiments] job {done}/{total} {key:?} finished in {elapsed:.2?} ({est})"
        ));
    }

    /// Emits one raw progress line.
    pub fn line(&mut self, msg: String) {
        match self {
            ProgressSink::Stderr => {
                // Best-effort, matching eprintln's behaviour of ignoring
                // a broken stderr.
                let _ = writeln!(std::io::stderr(), "{msg}");
            }
            ProgressSink::Capture(lines) => lines.push(msg),
        }
    }

    /// Captured lines (empty for the stderr sink).
    #[must_use]
    pub fn lines(&self) -> &[String] {
        match self {
            ProgressSink::Stderr => &[],
            ProgressSink::Capture(lines) => lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_records_formatted_lines() {
        let mut sink = ProgressSink::Capture(Vec::new());
        sink.job_done(2, 10, &("btree", 64), Duration::from_millis(1500), None);
        assert_eq!(sink.lines().len(), 1);
        let line = &sink.lines()[0];
        assert!(line.starts_with("[thoth-experiments] job 2/10 (\"btree\", 64) finished in "));
        assert!(line.contains("1.50s"));
        assert!(line.contains("(est n/a)"), "uncalibrated jobs say so: {line}");
    }

    #[test]
    fn estimates_appear_next_to_actuals() {
        let mut sink = ProgressSink::Capture(Vec::new());
        sink.job_done(
            3,
            10,
            &"swap",
            Duration::from_millis(250),
            Some(Duration::from_millis(230)),
        );
        let line = &sink.lines()[0];
        assert!(line.contains("finished in 250"));
        assert!(line.contains("(est 230"), "estimate printed: {line}");
    }

    #[test]
    fn lpt_counter_accumulates() {
        let before = jobs_lpt_reordered();
        note_jobs_lpt_reordered(3);
        note_jobs_lpt_reordered(2);
        assert_eq!(jobs_lpt_reordered() - before, 5);
    }

    #[test]
    fn stderr_sink_captures_nothing() {
        let sink = ProgressSink::Stderr;
        assert!(sink.lines().is_empty());
    }
}
