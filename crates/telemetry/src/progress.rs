//! Structured progress reporting for long-running job batches.
//!
//! The experiments runner used to format its per-job progress lines
//! inline with `eprintln!`; routing them through a [`ProgressSink`]
//! keeps the format in one testable place and gives callers a capture
//! mode (tests assert on the exact lines instead of scraping stderr).

use std::fmt::Debug;
use std::io::Write as _;
use std::time::Duration;

/// Where progress lines go.
#[derive(Debug)]
pub enum ProgressSink {
    /// Write each line to stderr as it arrives (the CLI default).
    Stderr,
    /// Collect lines in memory (for tests and quiet embedders).
    Capture(Vec<String>),
}

impl ProgressSink {
    /// Reports one finished job out of `total`.
    pub fn job_done<K: Debug>(&mut self, done: usize, total: usize, key: &K, elapsed: Duration) {
        self.line(format!(
            "[thoth-experiments] job {done}/{total} {key:?} finished in {elapsed:.2?}"
        ));
    }

    /// Emits one raw progress line.
    pub fn line(&mut self, msg: String) {
        match self {
            ProgressSink::Stderr => {
                // Best-effort, matching eprintln's behaviour of ignoring
                // a broken stderr.
                let _ = writeln!(std::io::stderr(), "{msg}");
            }
            ProgressSink::Capture(lines) => lines.push(msg),
        }
    }

    /// Captured lines (empty for the stderr sink).
    #[must_use]
    pub fn lines(&self) -> &[String] {
        match self {
            ProgressSink::Stderr => &[],
            ProgressSink::Capture(lines) => lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_records_formatted_lines() {
        let mut sink = ProgressSink::Capture(Vec::new());
        sink.job_done(2, 10, &("btree", 64), Duration::from_millis(1500));
        assert_eq!(sink.lines().len(), 1);
        let line = &sink.lines()[0];
        assert!(line.starts_with("[thoth-experiments] job 2/10 (\"btree\", 64) finished in "));
        assert!(line.contains("1.50s"));
    }

    #[test]
    fn stderr_sink_captures_nothing() {
        let sink = ProgressSink::Stderr;
        assert!(sink.lines().is_empty());
    }
}
