//! Embeddable occupancy probe for bounded queues.
//!
//! Component crates (`thoth-memctrl`, `thoth-core`, `thoth-nvm`) hold a
//! probe as `Option<QueueProbe>`; the hot path pays a single `is_some`
//! branch when telemetry is off. When on, every occupancy change is
//! recorded into a log2 histogram plus a running peak, so the harvest
//! step can check the structural invariant "occupancy never exceeded
//! capacity" without sampling gaps.

use crate::registry::Hist;

/// Records the occupancy history of one bounded queue.
#[derive(Debug, Clone)]
pub struct QueueProbe {
    name: &'static str,
    capacity: u64,
    hist: Hist,
    peak: u64,
    last: u64,
}

impl QueueProbe {
    /// A fresh probe for a queue of `capacity` slots.
    #[must_use]
    pub fn new(name: &'static str, capacity: u64) -> Self {
        QueueProbe {
            name,
            capacity,
            hist: Hist::new(),
            peak: 0,
            last: 0,
        }
    }

    /// Records the queue's occupancy after a change.
    pub fn record(&mut self, occupancy: u64) {
        self.hist.observe(occupancy);
        self.peak = self.peak.max(occupancy);
        self.last = occupancy;
    }

    /// The probe's queue name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The queue capacity the probe was created with.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Highest occupancy ever recorded.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Most recently recorded occupancy.
    #[must_use]
    pub fn last(&self) -> u64 {
        self.last
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.hist.count()
    }

    /// The occupancy histogram.
    #[must_use]
    pub fn hist(&self) -> &Hist {
        &self.hist
    }

    /// `true` when every recorded occupancy stayed within capacity —
    /// the invariant the property suite pins down for WPQ/PCB/PUB.
    #[must_use]
    pub fn within_capacity(&self) -> bool {
        self.peak <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thoth_testkit::check;

    #[test]
    fn records_peak_and_samples() {
        let mut p = QueueProbe::new("wpq", 64);
        for occ in [0u64, 3, 7, 2, 7, 5] {
            p.record(occ);
        }
        assert_eq!(p.name(), "wpq");
        assert_eq!(p.capacity(), 64);
        assert_eq!(p.peak(), 7);
        assert_eq!(p.last(), 5);
        assert_eq!(p.samples(), 6);
        assert!(p.within_capacity());
    }

    #[test]
    fn peak_above_capacity_is_flagged() {
        let mut p = QueueProbe::new("tiny", 4);
        p.record(5);
        assert!(!p.within_capacity());
    }

    #[test]
    fn peak_is_max_of_recorded() {
        check(100, |g| {
            let cap = g.range(1, 128);
            let mut p = QueueProbe::new("q", cap);
            let mut max = 0u64;
            for _ in 0..g.range_usize(1, 64) {
                let occ = g.below(cap + 1);
                max = max.max(occ);
                p.record(occ);
            }
            assert_eq!(p.peak(), max);
            assert!(p.within_capacity());
            assert_eq!(p.hist().count(), p.samples());
        });
    }
}
