//! Typed counters and log2-bucketed histograms behind a dense registry.
//!
//! Names are `&'static str`; lookup is a linear scan over a small `Vec`,
//! which is both allocation-free after warm-up and faster than hashing
//! for the dozen-odd stats a run registers (and it keeps std `HashMap`
//! out of a hot crate, per `thoth-lint`). IDs are dense indices; the hot
//! path is `add`/`observe` by ID — one bounds-checked array access.

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `b > 0` holds values `v` with
/// `floor(log2 v) == b - 1`, i.e. `2^(b-1) <= v < 2^b`. 65 buckets cover
/// the full `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (`u64::MAX` when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// The `p`-quantile of the recorded samples (`p` in `[0, 1]`,
    /// clamped), estimated from the log2 buckets.
    ///
    /// The target rank `p·(count−1)` is located by a cumulative walk over
    /// the buckets. Buckets 0 and 1 hold a single value each (0 and 1),
    /// so quantiles landing there are **exact**; a wider bucket `b`
    /// interpolates linearly across its `[2^(b−1), 2^b)` range, placing
    /// the bucket's `n` samples at its `n` midpoints. The result is
    /// clamped to the observed `[min, max]`, which also makes quantiles
    /// of constant samples exact, and is non-decreasing in `p`. Returns
    /// `0.0` for an empty histogram.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let target = p * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            // Samples of bucket b occupy ranks [seen, seen + n).
            if target < (seen + n) as f64 {
                let est = if b <= 1 {
                    // Single-valued buckets: 0 holds {0}, 1 holds {1}.
                    b as f64
                } else {
                    let lo = (1u64 << (b - 1)) as f64;
                    let width = lo; // bucket spans [2^(b-1), 2^b)
                    // Midpoint interpolation, capped at the bucket's top
                    // edge (the +0.5 shift would otherwise overshoot it
                    // and dip below the next bucket's start).
                    (lo + width * (target - seen as f64 + 0.5) / n as f64).min(2.0 * lo)
                };
                return est.clamp(self.min as f64, self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }
}

/// The dense stat registry: counters and histograms, registered by name.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Hist)>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Finds or registers the counter `name`.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Finds or registers the histogram `name`.
    pub fn hist(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| *n == name) {
            return HistId(i);
        }
        self.hists.push((name, Hist::new()));
        HistId(self.hists.len() - 1)
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Records one histogram sample.
    pub fn observe(&mut self, id: HistId, value: u64) {
        self.hists[id.0].1.observe(value);
    }

    /// Records a sample in the histogram AND bumps its paired counter by
    /// one — the invariant the property tests pin down: for every stat
    /// recorded this way, `hist.count() == counter value`.
    pub fn event(&mut self, counter: CounterId, hist: HistId, value: u64) {
        self.add(counter, 1);
        self.observe(hist, value);
    }

    /// Current value of a counter by name (`None` if never registered).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// A histogram by name (`None` if never registered).
    #[must_use]
    pub fn hist_named(&self, name: &str) -> Option<&Hist> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Every counter as `(name, value)`, in registration order.
    #[must_use]
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// Every histogram as `(name, hist)`, in registration order.
    #[must_use]
    pub fn hists(&self) -> &[(&'static str, Hist)] {
        &self.hists
    }

    /// Counters as CSV (`counter,value` header).
    #[must_use]
    pub fn counters_csv(&self) -> String {
        let mut s = String::from("counter,value\n");
        for (name, value) in &self.counters {
            s.push_str(name);
            s.push(',');
            s.push_str(&value.to_string());
            s.push('\n');
        }
        s
    }

    /// Histograms as long-format CSV
    /// (`hist,count,sum,min,max,mean` header, one row per histogram).
    #[must_use]
    pub fn hists_csv(&self) -> String {
        let mut s = String::from("hist,count,sum,min,max,mean\n");
        for (name, h) in &self.hists {
            let min = if h.count() == 0 { 0 } else { h.min() };
            s.push_str(&format!(
                "{name},{},{},{min},{},{:.3}\n",
                h.count(),
                h.sum(),
                h.max(),
                h.mean()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thoth_testkit::check;

    #[test]
    fn counter_find_or_create() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("y");
        let a2 = r.counter("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        r.add(a, 3);
        r.add(a2, 4);
        assert_eq!(r.counter_value("x"), Some(7));
        assert_eq!(r.counter_value("y"), Some(0));
        assert_eq!(r.counter_value("z"), None);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_of_is_log2_partition() {
        // Property: bucket b>0 contains exactly [2^(b-1), 2^b).
        check(500, |g| {
            let v = g.u64();
            let b = Hist::bucket_of(v);
            if v == 0 {
                assert_eq!(b, 0);
            } else {
                assert!(v >= 1u64 << (b - 1));
                assert!(b == 64 || v < 1u64 << b);
            }
        });
    }

    #[test]
    fn hist_totals_match_samples() {
        // Property: count equals bucket sum equals number of observes,
        // and sum/min/max track the sample set.
        check(100, |g| {
            let mut h = Hist::new();
            let n = g.range_usize(1, 64);
            let mut sum = 0u64;
            let mut min = u64::MAX;
            let mut max = 0u64;
            for _ in 0..n {
                let v = g.below(1 << 40);
                h.observe(v);
                sum += v;
                min = min.min(v);
                max = max.max(v);
            }
            assert_eq!(h.count(), n as u64);
            assert_eq!(h.buckets().iter().sum::<u64>(), n as u64);
            assert_eq!(h.sum(), sum);
            assert_eq!(h.min(), min);
            assert_eq!(h.max(), max);
            assert!((h.mean() - sum as f64 / n as f64).abs() < 1e-9);
        });
    }

    #[test]
    fn event_keeps_hist_and_counter_in_lock_step() {
        // The headline telemetry invariant: stats recorded via `event`
        // always satisfy hist.count == counter.
        check(100, |g| {
            let mut r = Registry::new();
            let c = r.counter("persists");
            let h = r.hist("persist_latency");
            let n = g.range_usize(0, 200);
            for _ in 0..n {
                r.event(c, h, g.below(10_000));
            }
            assert_eq!(
                r.counter_value("persists").expect("registered"),
                r.hist_named("persist_latency").expect("registered").count()
            );
        });
    }

    #[test]
    fn csv_shapes() {
        let mut r = Registry::new();
        let c = r.counter("stores");
        r.add(c, 2);
        let h = r.hist("lat");
        r.observe(h, 5);
        let cc = r.counters_csv();
        assert!(cc.starts_with("counter,value\n"));
        assert!(cc.contains("stores,2\n"));
        let hc = r.hists_csv();
        assert!(hc.starts_with("hist,count,sum,min,max,mean\n"));
        assert!(hc.contains("lat,1,5,5,5,5.000\n"));
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = Hist::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.999), 0.0);
    }

    #[test]
    fn quantile_exact_below_bucket_two() {
        // Buckets 0 and 1 are single-valued: quantiles there are exact.
        let mut h = Hist::new();
        for _ in 0..90 {
            h.observe(0);
        }
        for _ in 0..10 {
            h.observe(1);
        }
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.95), 1.0);
        assert_eq!(h.quantile(1.0), 1.0);
    }

    #[test]
    fn quantile_constant_samples_is_exact() {
        // min==max clamp pins every quantile of a constant stream.
        let mut h = Hist::new();
        for _ in 0..1000 {
            h.observe(1234);
        }
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(p), 1234.0, "p={p}");
        }
    }

    #[test]
    fn quantile_pins_p50_p99_p999_on_uniform() {
        // 100_000 samples uniform over [0, 4096): the exact p-quantile is
        // p*4095; log2 interpolation must land within one bucket width
        // (the containing bucket spans half its upper bound).
        let mut h = Hist::new();
        for i in 0..100_000u64 {
            h.observe(i % 4096);
        }
        for (p, exact) in [(0.5, 2047.5), (0.99, 4054.0), (0.999, 4090.9)] {
            let q = h.quantile(p);
            let bucket_width = (1u64 << (Hist::bucket_of(exact as u64) - 1)) as f64;
            assert!(
                (q - exact).abs() <= bucket_width,
                "p={p}: got {q}, exact {exact}, width {bucket_width}"
            );
        }
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 4095.0);
    }

    #[test]
    fn quantile_pins_tail_of_bimodal() {
        // 990 fast samples (value 100) + 10 slow (value 100_000): p50 and
        // p99 sit in the fast mode, p999 in the slow mode — the shape the
        // service saturation report depends on.
        let mut h = Hist::new();
        for _ in 0..990 {
            h.observe(100);
        }
        for _ in 0..10 {
            h.observe(100_000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!((64.0..256.0).contains(&p50), "p50 {p50} in fast bucket");
        assert!((64.0..256.0).contains(&p99), "p99 {p99} in fast bucket");
        assert!(
            (65_536.0..=131_072.0).contains(&p999),
            "p999 {p999} in slow bucket"
        );
        assert!(p999 <= 100_000.0, "clamped to observed max");
    }

    #[test]
    fn quantile_is_monotone_in_p() {
        check(100, |g| {
            let mut h = Hist::new();
            let n = g.range_usize(1, 300);
            for _ in 0..n {
                h.observe(g.below(1 << 30));
            }
            let mut prev = h.quantile(0.0);
            for i in 1..=100 {
                let q = h.quantile(f64::from(i) / 100.0);
                assert!(q >= prev, "quantile dips at p={}", f64::from(i) / 100.0);
                prev = q;
            }
            // And bounded by the observed extremes.
            assert!(h.quantile(0.0) >= h.min() as f64);
            assert!(h.quantile(1.0) <= h.max() as f64);
        });
    }

    #[test]
    fn empty_hist_csv_min_is_zero() {
        let mut r = Registry::new();
        r.hist("empty");
        assert!(r.hists_csv().contains("empty,0,0,0,0,0.000\n"));
    }
}
