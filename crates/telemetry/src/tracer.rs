//! Span tracer with Chrome `trace_event` JSON export.
//!
//! Lanes map to `tid`s in the exported trace — one per core, plus lanes
//! for the memory controller and the PUB engine — so a persist op's
//! journey WPQ → PCB → PUB → NVM reads left-to-right in
//! `chrome://tracing` or Perfetto (load the JSON via "Open trace file").
//!
//! Event vocabulary (subset of the trace_event spec):
//! * complete spans (`ph: "X"`) for per-op work on a core lane,
//! * instants (`ph: "i"`) for point events like PUB appends/evictions,
//! * async begin/end pairs (`ph: "b"` / `ph: "e"`) for WPQ residency,
//!   which overlaps arbitrarily and therefore cannot nest.
//!
//! Timestamps are core cycles reported as microseconds — Perfetto only
//! needs a consistent unit, and cycles keep the trace deterministic.

use crate::json;

/// What a recorded [`Span`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A closed interval of work on a lane (`ph: "X"`).
    Complete,
    /// A point event (`ph: "i"`).
    Instant,
    /// Start of an async interval keyed by `id` (`ph: "b"`).
    AsyncBegin,
    /// End of an async interval keyed by `id` (`ph: "e"`).
    AsyncEnd,
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Lane (exported as `tid`).
    pub lane: u32,
    /// Event name.
    pub name: &'static str,
    /// Event kind.
    pub kind: SpanKind,
    /// Start timestamp in cycles.
    pub ts: u64,
    /// Duration in cycles (complete spans only; 0 otherwise).
    pub dur: u64,
    /// Correlation id (async events only; 0 otherwise).
    pub id: u64,
}

/// Records spans across named lanes and exports Chrome trace JSON.
#[derive(Debug, Clone)]
pub struct SpanTracer {
    lanes: Vec<String>,
    events: Vec<Span>,
    open: Vec<Vec<(&'static str, u64)>>,
    cap: usize,
    dropped: u64,
}

impl SpanTracer {
    /// A tracer that stores at most `cap` events (the rest are counted
    /// as dropped — memory stays bounded on long runs).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        SpanTracer {
            lanes: Vec::new(),
            events: Vec::new(),
            open: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Finds or creates the lane `name`, returning its id.
    pub fn lane(&mut self, name: &str) -> u32 {
        if let Some(i) = self.lanes.iter().position(|l| l == name) {
            return i as u32;
        }
        self.lanes.push(name.to_string());
        self.open.push(Vec::new());
        (self.lanes.len() - 1) as u32
    }

    /// Lane names in id order.
    #[must_use]
    pub fn lanes(&self) -> &[String] {
        &self.lanes
    }

    fn record(&mut self, span: Span) {
        if self.events.len() < self.cap {
            self.events.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Records a closed span directly.
    pub fn complete(&mut self, lane: u32, name: &'static str, ts: u64, dur: u64) {
        self.record(Span {
            lane,
            name,
            kind: SpanKind::Complete,
            ts,
            dur,
            id: 0,
        });
    }

    /// Opens a nested span on `lane`; close it with [`SpanTracer::end`].
    pub fn begin(&mut self, lane: u32, name: &'static str, ts: u64) {
        self.open[lane as usize].push((name, ts));
    }

    /// Closes the innermost open span on `lane`, recording it as a
    /// complete span. Returns `false` if nothing was open.
    pub fn end(&mut self, lane: u32, ts: u64) -> bool {
        let Some((name, start)) = self.open[lane as usize].pop() else {
            return false;
        };
        self.complete(lane, name, start, ts.saturating_sub(start));
        true
    }

    /// Records a point event.
    pub fn instant(&mut self, lane: u32, name: &'static str, ts: u64) {
        self.record(Span {
            lane,
            name,
            kind: SpanKind::Instant,
            ts,
            dur: 0,
            id: 0,
        });
    }

    /// Starts an async interval correlated by `id` (e.g. WPQ residency
    /// of one block, keyed by address).
    pub fn async_begin(&mut self, lane: u32, name: &'static str, id: u64, ts: u64) {
        self.record(Span {
            lane,
            name,
            kind: SpanKind::AsyncBegin,
            ts,
            dur: 0,
            id,
        });
    }

    /// Ends the async interval correlated by `id`.
    pub fn async_end(&mut self, lane: u32, name: &'static str, id: u64, ts: u64) {
        self.record(Span {
            lane,
            name,
            kind: SpanKind::AsyncEnd,
            ts,
            dur: 0,
            id,
        });
    }

    /// All recorded events, in record order.
    #[must_use]
    pub fn events(&self) -> &[Span] {
        &self.events
    }

    /// Number of events discarded after the cap was hit.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Checks the structural invariant the property tests rely on, per
    /// lane: complete spans are recorded in a monotone timestamp order —
    /// non-decreasing starts (sequential `complete` calls) or
    /// non-decreasing ends (`begin`/`end` stack discipline) — and the
    /// span set is properly nested: any two spans on one lane are either
    /// disjoint or one contains the other.
    #[must_use]
    pub fn well_nested(&self) -> bool {
        let lanes = self.lanes.len().max(1);
        let mut per_lane: Vec<Vec<(u64, u64)>> = vec![Vec::new(); lanes];
        let mut last: Vec<(u64, u64)> = vec![(0, 0); lanes];
        let mut monotone: Vec<(bool, bool)> = vec![(true, true); lanes];
        for s in &self.events {
            if s.kind != SpanKind::Complete {
                continue;
            }
            let lane = s.lane as usize;
            if lane >= lanes {
                return false;
            }
            let end = s.ts.saturating_add(s.dur);
            if s.ts < last[lane].0 {
                monotone[lane].0 = false;
            }
            if end < last[lane].1 {
                monotone[lane].1 = false;
            }
            last[lane] = (s.ts, end);
            per_lane[lane].push((s.ts, end));
        }
        if monotone.iter().any(|&(starts, ends)| !starts && !ends) {
            return false;
        }
        for spans in &mut per_lane {
            // Sort by start, widest first on ties, then sweep a stack of
            // enclosing end times.
            spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            let mut stack: Vec<u64> = Vec::new();
            for &(ts, end) in spans.iter() {
                while stack.last().is_some_and(|&top| top <= ts) {
                    stack.pop();
                }
                if let Some(&top) = stack.last() {
                    if end > top {
                        return false;
                    }
                }
                stack.push(end);
            }
        }
        true
    }

    /// Exports the Chrome `trace_event` JSON object (the
    /// `{"traceEvents": [...]}` form, loadable in Perfetto). Each lane
    /// gets a `thread_name` metadata record; timestamps are cycles
    /// exported as microseconds.
    #[must_use]
    pub fn to_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, item: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&item);
        };
        for (tid, name) in self.lanes.iter().enumerate() {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    json::escape(name)
                ),
            );
        }
        for s in &self.events {
            let name = json::escape(s.name);
            let item = match s.kind {
                SpanKind::Complete => format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":\"{name}\",\
                     \"ts\":{},\"dur\":{}}}",
                    s.lane, s.ts, s.dur
                ),
                SpanKind::Instant => format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"name\":\"{name}\",\
                     \"ts\":{},\"s\":\"t\"}}",
                    s.lane, s.ts
                ),
                SpanKind::AsyncBegin => format!(
                    "{{\"ph\":\"b\",\"cat\":\"thoth\",\"pid\":0,\"tid\":{},\
                     \"name\":\"{name}\",\"id\":\"0x{:x}\",\"ts\":{}}}",
                    s.lane, s.id, s.ts
                ),
                SpanKind::AsyncEnd => format!(
                    "{{\"ph\":\"e\",\"cat\":\"thoth\",\"pid\":0,\"tid\":{},\
                     \"name\":\"{name}\",\"id\":\"0x{:x}\",\"ts\":{}}}",
                    s.lane, s.id, s.ts
                ),
            };
            push(&mut out, &mut first, item);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thoth_testkit::check;

    #[test]
    fn lanes_find_or_create() {
        let mut t = SpanTracer::new(16);
        let a = t.lane("core0");
        let b = t.lane("memctrl");
        assert_eq!(t.lane("core0"), a);
        assert_ne!(a, b);
        assert_eq!(t.lanes(), &["core0".to_string(), "memctrl".to_string()]);
    }

    #[test]
    fn begin_end_records_complete_span() {
        let mut t = SpanTracer::new(16);
        let lane = t.lane("core0");
        t.begin(lane, "store", 100);
        t.begin(lane, "persist", 110);
        assert!(t.end(lane, 150));
        assert!(t.end(lane, 200));
        assert!(!t.end(lane, 210));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].name, "persist");
        assert_eq!(t.events()[0].dur, 40);
        assert_eq!(t.events()[1].name, "store");
        assert_eq!(t.events()[1].dur, 100);
    }

    #[test]
    fn cap_drops_rather_than_grows() {
        let mut t = SpanTracer::new(2);
        let lane = t.lane("core0");
        for i in 0..5 {
            t.instant(lane, "tick", i);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn well_nested_accepts_sequential_and_nested() {
        let mut t = SpanTracer::new(64);
        let lane = t.lane("core0");
        t.complete(lane, "a", 0, 100);
        t.complete(lane, "a.inner", 10, 20);
        t.complete(lane, "b", 200, 50);
        let other = t.lane("core1");
        t.complete(other, "c", 5, 1000);
        assert!(t.well_nested());
    }

    #[test]
    fn well_nested_rejects_overlap_and_time_travel() {
        let mut t = SpanTracer::new(64);
        let lane = t.lane("core0");
        t.complete(lane, "a", 0, 100);
        t.complete(lane, "b", 50, 100);
        assert!(!t.well_nested());

        let mut t2 = SpanTracer::new(64);
        let lane = t2.lane("core0");
        t2.complete(lane, "a", 100, 10);
        t2.complete(lane, "b", 50, 10);
        assert!(!t2.well_nested());
    }

    #[test]
    fn trace_json_is_valid_and_has_lane_metadata() {
        let mut t = SpanTracer::new(64);
        let core = t.lane("core0");
        let mc = t.lane("memctrl");
        t.complete(core, "store", 0, 12);
        t.instant(mc, "pub_append", 4);
        t.async_begin(mc, "wpq", 0xdead_beef, 2);
        t.async_end(mc, "wpq", 0xdead_beef, 9);
        let json_text = t.to_trace_json();
        crate::json::validate(&json_text).expect("exported trace must be valid JSON");
        assert!(json_text.contains("\"thread_name\""));
        assert!(json_text.contains("\"core0\""));
        assert!(json_text.contains("\"ph\":\"X\""));
        assert!(json_text.contains("\"id\":\"0xdeadbeef\""));
    }

    #[test]
    fn stack_discipline_is_always_well_nested() {
        // Property: any sequence produced through begin/end with
        // monotonically advancing time is well-nested and the export is
        // syntactically valid JSON.
        check(50, |g| {
            let mut t = SpanTracer::new(4096);
            let lanes = [t.lane("core0"), t.lane("core1")];
            let mut now = 0u64;
            let mut depth = [0usize; 2];
            for _ in 0..g.range_usize(1, 100) {
                now += g.range(1, 50);
                let li = g.range_usize(0, 2);
                if depth[li] > 0 && g.bool() {
                    t.end(lanes[li], now);
                    depth[li] -= 1;
                } else if depth[li] < 8 {
                    t.begin(lanes[li], "op", now);
                    depth[li] += 1;
                }
            }
            for li in 0..2 {
                while depth[li] > 0 {
                    now += 1;
                    t.end(lanes[li], now);
                    depth[li] -= 1;
                }
            }
            assert!(t.well_nested());
            crate::json::validate(&t.to_trace_json()).expect("valid JSON");
        });
    }
}
