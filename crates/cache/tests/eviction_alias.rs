//! Regression tests for the eviction and address-aliasing paths the
//! inline unit tests skim over: set-local victim selection, byte-address
//! aliasing onto one line across the whole API, and the statistics
//! counted on each eviction flavour.

use thoth_cache::{CacheConfig, SetAssocCache};

/// 2 sets × 2 ways × 64 B blocks: set stride is 128 B.
fn small() -> SetAssocCache<u32> {
    SetAssocCache::new(CacheConfig::new(256, 2, 64))
}

#[test]
fn eviction_is_set_local() {
    let mut c = small();
    // Fill set 0 (addresses ≡ 0 mod 128) and set 1 (≡ 64 mod 128).
    c.insert(0x000, 1);
    c.insert(0x080, 2);
    c.insert(0x040, 3);
    c.insert(0x0c0, 4);
    assert_eq!(c.len(), 4);
    // Overflowing set 0 must evict from set 0 and leave set 1 intact.
    let ev = c.insert(0x100, 5).expect("set 0 is full");
    assert_eq!(ev.addr % 128, 0, "victim came from set 0");
    assert!(c.contains(0x040) && c.contains(0x0c0), "set 1 untouched");
    assert_eq!(c.len(), 4);
}

#[test]
fn clean_eviction_is_counted() {
    let mut c = small();
    c.insert(0x000, 1);
    c.insert(0x080, 2);
    let _ = c.insert(0x100, 3).expect("eviction");
    let s = c.stats();
    assert_eq!(s.clean_evictions, 1);
    assert_eq!(s.dirty_evictions, 0);
}

#[test]
fn byte_addresses_alias_to_one_line_across_the_api() {
    let mut c = small();
    c.insert(0x020, 7); // unaligned insert lands on block 0x000
    assert!(c.contains(0x000));
    assert_eq!(c.len(), 1);
    // Every aliased byte address reaches the same line.
    assert!(c.mark_dirty(0x03f, Some(1)));
    assert!(c.is_dirty(0x000));
    assert_eq!(c.dirty_mask(0x01), 1 << 1);
    assert_eq!(c.peek(0x03e), Some(&7));
    assert!(c.clean(0x025));
    assert!(!c.is_dirty(0x000));
    // Aliased insert replaces rather than duplicating.
    assert!(c.insert(0x010, 8).is_none());
    assert_eq!(c.len(), 1);
    assert_eq!(c.peek(0x000), Some(&8));
    // Aliased remove takes the line out.
    let r = c.remove(0x030).expect("resident");
    assert_eq!(r.addr, 0x000, "evicted record carries the aligned address");
    assert!(c.is_empty());
}

#[test]
fn misses_on_absent_blocks_do_not_disturb_state() {
    let mut c = small();
    assert!(c.remove(0x000).is_none());
    assert!(!c.clean(0x000));
    assert!(c.drain().is_empty());
    assert_eq!(c.stats().hit_rate(), None, "no lookups yet");
    assert!(c.lookup(0x200).is_none());
    assert_eq!(c.stats().hit_rate(), Some(0.0));
}

#[test]
fn reinserting_an_evicted_block_starts_clean() {
    let mut c = small();
    c.insert(0x000, 1);
    c.mark_dirty(0x000, Some(9));
    c.insert(0x080, 2);
    c.lookup(0x080); // make 0x000 the LRU victim
    let ev = c.insert(0x100, 3).expect("eviction");
    assert_eq!((ev.addr, ev.dirty, ev.dirty_mask), (0x000, true, 1 << 9));
    // The block comes back as a fresh fetch: clean, zero mask.
    c.lookup(0x100); // victimize 0x080 next, not 0x100
    c.insert(0x000, 4);
    assert!(!c.is_dirty(0x000));
    assert_eq!(c.dirty_mask(0x000), 0);
    assert_eq!(c.peek(0x000), Some(&4));
}
