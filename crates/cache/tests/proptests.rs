//! Property tests: the set-associative cache against a reference model
//! (deterministic thoth-testkit cases).

use std::collections::HashMap;
use thoth_cache::{CacheConfig, SetAssocCache};
use thoth_testkit::{check, Gen};

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    Insert(u64, u32),
    MarkDirty(u64, usize),
    Clean(u64),
    Remove(u64),
}

fn arb_op(g: &mut Gen) -> Op {
    let addr = g.below(32) * 64;
    match g.below(5) {
        0 => Op::Lookup(addr),
        1 => Op::Insert(addr, g.u64() as u32),
        2 => Op::MarkDirty(addr, g.range_usize(0, 64)),
        3 => Op::Clean(addr),
        _ => Op::Remove(addr),
    }
}

/// Whatever the op sequence, a resident block's payload equals the
/// last value inserted for it, capacity bounds hold, and dirty state
/// follows mark/clean/insert semantics.
#[test]
fn cache_matches_reference_model() {
    check(128, |g| {
        let ops = g.vec_of(0, 300, arb_op);
        let cfg = CacheConfig::new(512, 2, 64); // 4 sets x 2 ways
        let mut cache: SetAssocCache<u32> = SetAssocCache::new(cfg);
        // Reference: value and dirtiness of the last state per address
        // (only checked when resident — evictions are the cache's choice).
        let mut model: HashMap<u64, (u32, bool, u64)> = HashMap::new();
        for op in ops {
            match op {
                Op::Lookup(a) => {
                    if let Some(&v) = cache.lookup(a) {
                        assert_eq!(v, model[&a].0, "payload mismatch");
                    }
                }
                Op::Insert(a, v) => {
                    cache.insert(a, v);
                    model.insert(a, (v, false, 0));
                }
                Op::MarkDirty(a, s) => {
                    let was = cache.contains(a);
                    let ok = cache.mark_dirty(a, Some(s));
                    assert_eq!(ok, was);
                    if let Some(e) = model.get_mut(&a) {
                        if was {
                            e.1 = true;
                            e.2 |= 1 << s;
                        }
                    }
                }
                Op::Clean(a) => {
                    cache.clean(a);
                    if let Some(e) = model.get_mut(&a) {
                        e.1 = false;
                        e.2 = 0;
                    }
                }
                Op::Remove(a) => {
                    cache.remove(a);
                    model.remove(&a);
                }
            }
            // Invariants after every op:
            assert!(cache.len() <= cfg.num_lines());
            for (addr, v, dirty, mask) in cache.iter() {
                let (mv, mdirty, mmask) = model[&addr];
                assert_eq!(*v, mv);
                assert_eq!(dirty, mdirty);
                assert_eq!(mask, mmask);
                assert_eq!(dirty, mask != 0 || dirty && mask == 0);
            }
        }
    });
}

/// Evictions only happen when a set is full, and always evict from
/// the same set as the incoming block.
#[test]
fn evictions_stay_within_the_set() {
    check(128, |g| {
        let addrs = g.vec_of(1, 200, |g| g.below(64));
        let cfg = CacheConfig::new(512, 2, 64); // 4 sets
        let sets = cfg.num_sets() as u64;
        let mut cache: SetAssocCache<()> = SetAssocCache::new(cfg);
        for a in addrs {
            let addr = a * 64;
            if let Some(ev) = cache.insert(addr, ()) {
                assert_eq!(
                    (ev.addr / 64) % sets,
                    (addr / 64) % sets,
                    "evicted from a different set"
                );
            }
        }
    });
}
