//! Property tests: the set-associative cache against a reference model.

use proptest::prelude::*;
use std::collections::HashMap;
use thoth_cache::{CacheConfig, SetAssocCache};

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    Insert(u64, u32),
    MarkDirty(u64, usize),
    Clean(u64),
    Remove(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let addr = (0u64..32).prop_map(|a| a * 64);
    prop_oneof![
        addr.clone().prop_map(Op::Lookup),
        (addr.clone(), any::<u32>()).prop_map(|(a, v)| Op::Insert(a, v)),
        (addr.clone(), 0usize..64).prop_map(|(a, s)| Op::MarkDirty(a, s)),
        addr.clone().prop_map(Op::Clean),
        addr.prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the op sequence, a resident block's payload equals the
    /// last value inserted for it, capacity bounds hold, and dirty state
    /// follows mark/clean/insert semantics.
    #[test]
    fn cache_matches_reference_model(ops in proptest::collection::vec(arb_op(), 0..300)) {
        let cfg = CacheConfig::new(512, 2, 64); // 4 sets x 2 ways
        let mut cache: SetAssocCache<u32> = SetAssocCache::new(cfg);
        // Reference: value and dirtiness of the last state per address
        // (only checked when resident — evictions are the cache's choice).
        let mut model: HashMap<u64, (u32, bool, u64)> = HashMap::new();
        for op in ops {
            match op {
                Op::Lookup(a) => {
                    if let Some(&v) = cache.lookup(a) {
                        prop_assert_eq!(v, model[&a].0, "payload mismatch");
                    }
                }
                Op::Insert(a, v) => {
                    cache.insert(a, v);
                    model.insert(a, (v, false, 0));
                }
                Op::MarkDirty(a, s) => {
                    let was = cache.contains(a);
                    let ok = cache.mark_dirty(a, Some(s));
                    prop_assert_eq!(ok, was);
                    if let Some(e) = model.get_mut(&a) {
                        if was {
                            e.1 = true;
                            e.2 |= 1 << s;
                        }
                    }
                }
                Op::Clean(a) => {
                    cache.clean(a);
                    if let Some(e) = model.get_mut(&a) {
                        e.1 = false;
                        e.2 = 0;
                    }
                }
                Op::Remove(a) => {
                    cache.remove(a);
                    model.remove(&a);
                }
            }
            // Invariants after every op:
            prop_assert!(cache.len() <= cfg.num_lines());
            for (addr, v, dirty, mask) in cache.iter() {
                let (mv, mdirty, mmask) = model[&addr];
                prop_assert_eq!(*v, mv);
                prop_assert_eq!(dirty, mdirty);
                prop_assert_eq!(mask, mmask);
                prop_assert_eq!(dirty, mask != 0 || dirty && mask == 0);
            }
        }
    }

    /// Evictions only happen when a set is full, and always evict from
    /// the same set as the incoming block.
    #[test]
    fn evictions_stay_within_the_set(addrs in proptest::collection::vec(0u64..64, 1..200)) {
        let cfg = CacheConfig::new(512, 2, 64); // 4 sets
        let sets = cfg.num_sets() as u64;
        let mut cache: SetAssocCache<()> = SetAssocCache::new(cfg);
        for a in addrs {
            let addr = a * 64;
            if let Some(ev) = cache.insert(addr, ()) {
                prop_assert_eq!(
                    (ev.addr / 64) % sets,
                    (addr / 64) % sets,
                    "evicted from a different set"
                );
            }
        }
    }
}
