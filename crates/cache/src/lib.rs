//! Set-associative write-back cache substrate.
//!
//! The secure metadata caches of the paper (counter cache, MAC cache,
//! Merkle-tree cache — Table I) and the volatile data LLC model are all
//! instances of [`SetAssocCache`]: a generic, LRU, write-back,
//! set-associative cache keyed by block address.
//!
//! Two features exist specifically for Thoth:
//!
//! * **Block dirty state is observable before mutation** — the WTSC policy
//!   records "was the block already dirty when this partial update
//!   arrived?" as the PUB entry's status bit (Section IV-B).
//! * **Per-subblock dirty bitmasks** — the WTBC policy tracks dirtiness of
//!   individual counters/MACs within a metadata block; the mask is carried
//!   on each line and returned with evictions.
//!
//! # Example
//!
//! ```
//! use thoth_cache::{CacheConfig, SetAssocCache};
//!
//! // The paper's counter cache: 64 kB, 4-way, 64 B blocks.
//! let mut cache: SetAssocCache<Vec<u8>> =
//!     SetAssocCache::new(CacheConfig::new(64 * 1024, 4, 64));
//! cache.insert(0x1000, vec![0; 64]);
//! assert!(cache.contains(0x1000));
//! assert!(!cache.is_dirty(0x1000));
//! cache.mark_dirty(0x1000, Some(3));
//! assert!(cache.is_dirty(0x1000));
//! assert_eq!(cache.dirty_mask(0x1000), 1 << 3);
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Configuration of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Block (line) size in bytes; also the address alignment.
    pub block_bytes: usize,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity_bytes` is a positive multiple of
    /// `ways * block_bytes`.
    #[must_use]
    pub fn new(capacity_bytes: usize, ways: usize, block_bytes: usize) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && block_bytes > 0);
        assert_eq!(
            capacity_bytes % (ways * block_bytes),
            0,
            "capacity must be a whole number of sets"
        );
        CacheConfig {
            capacity_bytes,
            ways,
            block_bytes,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.block_bytes)
    }

    /// Total number of lines.
    #[must_use]
    pub fn num_lines(&self) -> usize {
        self.capacity_bytes / self.block_bytes
    }
}

/// A line evicted from (or removed out of) the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<V> {
    /// Block-aligned address of the line.
    pub addr: u64,
    /// The cached payload.
    pub value: V,
    /// Whether the line was dirty (needs write-back).
    pub dirty: bool,
    /// Per-subblock dirty bits (bit *i* = subblock *i* was updated).
    pub dirty_mask: u64,
}

#[derive(Debug, Clone)]
struct Line<V> {
    addr: u64,
    value: V,
    dirty: bool,
    dirty_mask: u64,
    last_use: u64,
}

/// Running hit/miss/eviction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Evictions of dirty lines (write-backs).
    pub dirty_evictions: u64,
    /// Evictions of clean lines.
    pub clean_evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`, or `None` before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// A generic LRU set-associative write-back cache keyed by block address.
///
/// Addresses are block-aligned internally; callers may pass any byte
/// address within the block.
#[derive(Clone)]
pub struct SetAssocCache<V> {
    config: CacheConfig,
    sets: Vec<Vec<Line<V>>>,
    tick: u64,
    stats: CacheStats,
    /// `(log2(block_bytes), num_sets - 1)` when both are powers of two —
    /// the usual geometry. Lets every probe replace its two hardware
    /// divisions with a shift and a mask, which matters because the
    /// simulator's hot paths take tens of cache probes per simulated op.
    pow2: Option<(u32, u64)>,
}

impl<V> SetAssocCache<V> {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = (0..config.num_sets()).map(|_| Vec::new()).collect();
        let pow2 = (config.block_bytes.is_power_of_two() && config.num_sets().is_power_of_two())
            .then(|| {
                (
                    config.block_bytes.trailing_zeros(),
                    config.num_sets() as u64 - 1,
                )
            });
        SetAssocCache {
            config,
            sets,
            tick: 0,
            stats: CacheStats::default(),
            pow2,
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn align(&self, addr: u64) -> u64 {
        match self.pow2 {
            Some((shift, _)) => addr >> shift << shift,
            None => addr - addr % self.config.block_bytes as u64,
        }
    }

    fn set_index(&self, block_addr: u64) -> usize {
        match self.pow2 {
            Some((shift, mask)) => ((block_addr >> shift) & mask) as usize,
            None => {
                ((block_addr / self.config.block_bytes as u64) % self.config.num_sets() as u64)
                    as usize
            }
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `addr`, counting a hit or miss and refreshing LRU on hit.
    /// Returns a shared reference to the payload.
    pub fn lookup(&mut self, addr: u64) -> Option<&V> {
        self.lookup_mut(addr).map(|v| &*v)
    }

    /// Looks up `addr` mutably, counting a hit or miss and refreshing LRU.
    pub fn lookup_mut(&mut self, addr: u64) -> Option<&mut V> {
        let block = self.align(addr);
        let set = self.set_index(block);
        let tick = self.bump();
        let line = self.sets[set].iter_mut().find(|l| l.addr == block);
        match line {
            Some(l) => {
                l.last_use = tick;
                self.stats.hits += 1;
                Some(&mut l.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks residency without touching LRU or statistics.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let block = self.align(addr);
        let set = self.set_index(block);
        self.sets[set].iter().any(|l| l.addr == block)
    }

    /// Reads the payload without touching LRU or statistics.
    #[must_use]
    pub fn peek(&self, addr: u64) -> Option<&V> {
        let block = self.align(addr);
        let set = self.set_index(block);
        self.sets[set]
            .iter()
            .find(|l| l.addr == block)
            .map(|l| &l.value)
    }

    /// Whether the block is resident and dirty. Non-resident blocks are
    /// reported clean. Does not touch LRU or statistics — WTSC reads this
    /// *before* applying a partial update.
    #[must_use]
    pub fn is_dirty(&self, addr: u64) -> bool {
        let block = self.align(addr);
        let set = self.set_index(block);
        self.sets[set]
            .iter()
            .find(|l| l.addr == block)
            .is_some_and(|l| l.dirty)
    }

    /// The per-subblock dirty mask of a resident block (0 if absent).
    #[must_use]
    pub fn dirty_mask(&self, addr: u64) -> u64 {
        let block = self.align(addr);
        let set = self.set_index(block);
        self.sets[set]
            .iter()
            .find(|l| l.addr == block)
            .map_or(0, |l| l.dirty_mask)
    }

    /// Inserts a *clean* block, evicting the LRU line of the set if full.
    ///
    /// Fetching a block from memory inserts it clean with a zero mask
    /// ("upon a fetch of a security metadata block, all dirty bits ... are
    /// set to 0", Section IV-B). Returns the evicted line, if any.
    ///
    /// Inserting over an existing line replaces its payload and clears its
    /// dirty state (the caller is assumed to have persisted it).
    pub fn insert(&mut self, addr: u64, value: V) -> Option<Evicted<V>> {
        let block = self.align(addr);
        let set = self.set_index(block);
        let tick = self.bump();

        if let Some(l) = self.sets[set].iter_mut().find(|l| l.addr == block) {
            l.value = value;
            l.dirty = false;
            l.dirty_mask = 0;
            l.last_use = tick;
            return None;
        }

        let mut evicted = None;
        if self.sets[set].len() >= self.config.ways {
            let lru = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            let old = self.sets[set].swap_remove(lru);
            if old.dirty {
                self.stats.dirty_evictions += 1;
            } else {
                self.stats.clean_evictions += 1;
            }
            evicted = Some(Evicted {
                addr: old.addr,
                value: old.value,
                dirty: old.dirty,
                dirty_mask: old.dirty_mask,
            });
        }
        self.sets[set].push(Line {
            addr: block,
            value,
            dirty: false,
            dirty_mask: 0,
            last_use: tick,
        });
        evicted
    }

    /// Marks a resident block dirty, optionally setting one subblock bit.
    ///
    /// Returns `true` if the block was resident.
    ///
    /// # Panics
    ///
    /// Panics if `subblock` is 64 or more (the mask is 64 bits wide).
    pub fn mark_dirty(&mut self, addr: u64, subblock: Option<usize>) -> bool {
        let block = self.align(addr);
        let set = self.set_index(block);
        let tick = self.bump();
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.addr == block) {
            l.dirty = true;
            if let Some(i) = subblock {
                assert!(i < 64, "subblock index {i} out of mask range");
                l.dirty_mask |= 1 << i;
            }
            l.last_use = tick;
            true
        } else {
            false
        }
    }

    /// Clears the dirty state of a resident block (after persisting it).
    /// Returns `true` if the block was resident.
    pub fn clean(&mut self, addr: u64) -> bool {
        let block = self.align(addr);
        let set = self.set_index(block);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.addr == block) {
            l.dirty = false;
            l.dirty_mask = 0;
            true
        } else {
            false
        }
    }

    /// Removes a block, returning it.
    pub fn remove(&mut self, addr: u64) -> Option<Evicted<V>> {
        let block = self.align(addr);
        let set = self.set_index(block);
        let idx = self.sets[set].iter().position(|l| l.addr == block)?;
        let old = self.sets[set].swap_remove(idx);
        Some(Evicted {
            addr: old.addr,
            value: old.value,
            dirty: old.dirty,
            dirty_mask: old.dirty_mask,
        })
    }

    /// Drains every line (a crash dropping volatile state, or a flush).
    /// Lines are returned in unspecified order.
    pub fn drain(&mut self) -> Vec<Evicted<V>> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for l in set.drain(..) {
                out.push(Evicted {
                    addr: l.addr,
                    value: l.value,
                    dirty: l.dirty,
                    dirty_mask: l.dirty_mask,
                });
            }
        }
        out
    }

    /// Iterates over `(addr, &value, dirty, dirty_mask)` of all lines.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V, bool, u64)> {
        self.sets
            .iter()
            .flatten()
            .map(|l| (l.addr, &l.value, l.dirty, l.dirty_mask))
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no lines are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V> fmt::Debug for SetAssocCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("config", &self.config)
            .field("resident", &self.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u32> {
        // 2 sets x 2 ways x 64 B blocks.
        SetAssocCache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(64 * 1024, 4, 64);
        assert_eq!(c.num_sets(), 256);
        assert_eq!(c.num_lines(), 1024);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_config_panics() {
        let _ = CacheConfig::new(1000, 3, 64);
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = small();
        assert!(c.lookup(0x0).is_none());
        c.insert(0x0, 1);
        assert_eq!(c.lookup(0x0), Some(&1));
        assert_eq!(c.lookup(0x3f), Some(&1), "same block, any byte");
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_rate(), Some(2.0 / 3.0));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Set 0 holds blocks 0x000 and 0x080 (stride = block * num_sets = 128).
        c.insert(0x000, 10);
        c.insert(0x080, 20);
        c.lookup(0x000); // make 0x080 the LRU
        let ev = c.insert(0x100, 30).expect("eviction");
        assert_eq!(ev.addr, 0x080);
        assert!(!ev.dirty);
        assert!(c.contains(0x000));
        assert!(c.contains(0x100));
    }

    #[test]
    fn dirty_state_and_mask() {
        let mut c = small();
        c.insert(0x0, 5);
        assert!(!c.is_dirty(0x0));
        assert!(c.mark_dirty(0x0, Some(2)));
        assert!(c.mark_dirty(0x0, Some(7)));
        assert!(c.is_dirty(0x0));
        assert_eq!(c.dirty_mask(0x0), (1 << 2) | (1 << 7));
        assert!(c.clean(0x0));
        assert!(!c.is_dirty(0x0));
        assert_eq!(c.dirty_mask(0x0), 0);
        // Non-resident blocks: clean, zero mask, mark fails.
        assert!(!c.is_dirty(0x4000));
        assert_eq!(c.dirty_mask(0x4000), 0);
        assert!(!c.mark_dirty(0x4000, None));
    }

    #[test]
    fn eviction_carries_dirty_mask() {
        let mut c = small();
        c.insert(0x000, 1);
        c.mark_dirty(0x000, Some(5));
        c.insert(0x080, 2);
        // mark_dirty refreshed 0x000's LRU stamp; touch 0x080 so 0x000
        // becomes the victim.
        c.lookup(0x080);
        let ev = c.insert(0x100, 3).unwrap();
        assert_eq!(ev.addr, 0x000);
        assert!(ev.dirty);
        assert_eq!(ev.dirty_mask, 1 << 5);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn reinsert_clears_dirty() {
        let mut c = small();
        c.insert(0x0, 1);
        c.mark_dirty(0x0, Some(0));
        assert!(c.insert(0x0, 2).is_none(), "replacement, not eviction");
        assert!(!c.is_dirty(0x0));
        assert_eq!(c.peek(0x0), Some(&2));
    }

    #[test]
    fn remove_and_drain() {
        let mut c = small();
        c.insert(0x000, 1);
        c.insert(0x040, 2);
        c.mark_dirty(0x040, None);
        let r = c.remove(0x040).unwrap();
        assert!(r.dirty);
        assert_eq!(r.value, 2);
        assert_eq!(c.len(), 1);
        let drained = c.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].addr, 0x000);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_disturb_lru_or_stats() {
        let mut c = small();
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        let before = c.stats();
        assert_eq!(c.peek(0x000), Some(&1));
        assert_eq!(c.stats(), before);
        // 0x000 is still LRU (insert order), so it gets evicted.
        let ev = c.insert(0x100, 3).unwrap();
        assert_eq!(ev.addr, 0x000);
    }

    #[test]
    fn capacity_respected_per_set() {
        let mut c = small();
        for i in 0..100u64 {
            c.insert(i * 64, i as u32);
        }
        assert!(c.len() <= c.config().num_lines());
        for set_lines in &c.sets {
            assert!(set_lines.len() <= 2);
        }
    }

    #[test]
    fn lookup_mut_mutates_payload() {
        let mut c = small();
        c.insert(0x0, 7);
        *c.lookup_mut(0x0).unwrap() = 9;
        assert_eq!(c.peek(0x0), Some(&9));
    }

    #[test]
    #[should_panic(expected = "out of mask range")]
    fn oversized_subblock_panics() {
        let mut c = small();
        c.insert(0x0, 1);
        c.mark_dirty(0x0, Some(64));
    }

    #[test]
    fn iter_reports_all_lines() {
        let mut c = small();
        c.insert(0x000, 1);
        c.insert(0x040, 2);
        c.mark_dirty(0x000, Some(1));
        let mut seen: Vec<_> = c.iter().map(|(a, v, d, m)| (a, *v, d, m)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0x000, 1, true, 2), (0x040, 2, false, 0)]);
    }
}
