//! Scaled-down checks of the paper's central claims (full-size numbers
//! live in EXPERIMENTS.md; these tests pin the *shapes* so regressions
//! that would invalidate the reproduction fail CI).

use thoth_repro::experiments::runner::{sim_config, ExpSettings, TraceCache};
use thoth_repro::experiments::{fig3, gmean};
use thoth_repro::sim::Mode;
use thoth_repro::workloads::WorkloadKind;

#[test]
fn claim_large_pub_eliminates_most_writebacks() {
    // Section III / Figure 3: with a large FIFO, the vast majority of
    // evicted partial updates need no metadata persist.
    let rows = fig3::analyze_workload(WorkloadKind::Ctree, ExpSettings::quick(), &[5_000, 50]);
    let large = &rows[0];
    let small = &rows[1];
    let skip_large = 1.0 - large.fractions[0];
    let skip_small = 1.0 - small.fractions[0];
    assert!(
        skip_large > 0.9,
        "a large buffer must skip >90% of evictions, got {skip_large:.3}"
    );
    assert!(skip_large >= skip_small, "skip rate must grow with size");
}

#[test]
fn claim_thoth_beats_baseline_on_average() {
    // Figures 8 & 9: Thoth is faster and writes less, with swap as the
    // known no-gain outlier.
    let settings = ExpSettings::quick();
    let mut cache = TraceCache::new(settings);
    let mut speedups = Vec::new();
    let mut ratios = Vec::new();
    for kind in WorkloadKind::ALL {
        let trace = cache.get(kind, 128);
        let base = thoth_repro::sim::run_trace(&sim_config(Mode::baseline(), 128), &trace);
        let thoth = thoth_repro::sim::run_trace(&sim_config(Mode::thoth_wtsc(), 128), &trace);
        speedups.push(thoth.speedup_over(&base));
        ratios.push(thoth.write_ratio_vs(&base));
    }
    let g = gmean(&speedups);
    assert!(g >= 1.0, "Thoth must not slow the average down: {g:.3}");
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean_ratio < 0.95,
        "Thoth must reduce average write traffic: {mean_ratio:.3}"
    );
}

#[test]
fn claim_smaller_wpq_amplifies_thoth() {
    // Figure 12: the baseline leans on WPQ coalescing, so a smaller WPQ
    // must not *shrink* Thoth's advantage.
    let settings = ExpSettings::quick();
    let mut cache = TraceCache::new(settings);
    let trace = cache.get(WorkloadKind::Btree, 128);
    let speedup_at = |wpq: usize| {
        let mut b = sim_config(Mode::baseline(), 128);
        b.wpq_entries = wpq;
        b.pcb_entries = (wpq / 8).max(1);
        let mut t = sim_config(Mode::thoth_wtsc(), 128);
        t.wpq_entries = wpq;
        t.pcb_entries = (wpq / 8).max(1);
        let base = thoth_repro::sim::run_trace(&b, &trace);
        let thoth = thoth_repro::sim::run_trace(&t, &trace);
        thoth.speedup_over(&base)
    };
    let s64 = speedup_at(64);
    let s16 = speedup_at(16);
    assert!(
        s16 >= s64 * 0.95,
        "16-entry WPQ should favour Thoth at least as much: {s16:.3} vs {s64:.3}"
    );
}

#[test]
fn claim_pcb_merge_rate_falls_with_tx_size() {
    // Table III: larger transactions spread consecutive updates to the
    // same counter/MAC beyond the PCB window.
    let settings = ExpSettings::quick();
    let mut cache = TraceCache::new(settings);
    let rate_at = |tx: usize, cache: &mut TraceCache| {
        let trace = cache.get(WorkloadKind::Btree, tx);
        let r = thoth_repro::sim::run_trace(&sim_config(Mode::thoth_wtsc(), 128), &trace);
        r.pcb_merge_fraction()
    };
    let small = rate_at(128, &mut cache);
    let large = rate_at(2048, &mut cache);
    assert!(
        large <= small,
        "merge rate must fall with tx size: {small:.3} -> {large:.3}"
    );
}

#[test]
fn claim_recovery_cost_model_matches_footnote() {
    // Section IV-D: ≈7 s to recover a full 64 MB PUB.
    let model = thoth_repro::core::recovery::RecoveryCostModel::default();
    let secs = model.pub_recovery_secs((64 << 20) / 128, 9);
    assert!((5.0..10.0).contains(&secs), "{secs:.2} s");
}

#[test]
fn claim_pub_geometry_matches_paper() {
    // Section IV-A: 9 partial updates per 128 B block, 19 per 256 B.
    assert_eq!(
        thoth_repro::core::PubBlockCodec::new(128).entries_per_block(),
        9
    );
    assert_eq!(
        thoth_repro::core::PubBlockCodec::new(256).entries_per_block(),
        19
    );
}
