//! Property-based security tests spanning the crypto, core and merkle
//! crates: the invariants that make Thoth's crash consistency *secure*,
//! exercised with proptest.

use proptest::prelude::*;

use thoth_repro::core::{PartialUpdate, PubBlockCodec};
use thoth_repro::crypto::counter::CounterGroup;
use thoth_repro::crypto::{CtrMode, MacEngine, MacKey};
use thoth_repro::merkle::{BonsaiTree, MerkleConfig};

fn arb_update() -> impl Strategy<Value = PartialUpdate> {
    (any::<u32>(), 0u8..128, any::<u64>(), any::<bool>(), any::<bool>()).prop_map(
        |(block_index, minor, mac2, ctr_status, mac_status)| PartialUpdate {
            block_index,
            minor,
            mac2,
            ctr_status,
            mac_status,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pub_codec_roundtrips_any_entries(
        updates in proptest::collection::vec(arb_update(), 1..=9)
    ) {
        let codec = PubBlockCodec::new(128);
        let mut decoded = codec.decode(&codec.encode(&updates));
        // Crash padding collapses *adjacent duplicates*; reinflate for
        // comparison by deduping the input the same way.
        let mut expect = updates.clone();
        expect.dedup();
        decoded.truncate(expect.len());
        prop_assert_eq!(decoded, expect);
    }

    #[test]
    fn ctr_mode_roundtrips_and_is_counter_sensitive(
        addr in 0u64..(1 << 40),
        major in any::<u64>(),
        minor in 0u8..128,
        data in proptest::collection::vec(any::<u8>(), 128..=128)
    ) {
        let ctr = CtrMode::new(b"prop-test-key..!");
        let ct = ctr.encrypt(addr, major, minor, &data);
        prop_assert_eq!(ctr.decrypt(addr, major, minor, &ct), data.clone());
        let wrong = ctr.decrypt(addr, major, minor ^ 1, &ct);
        prop_assert_ne!(wrong, data);
    }

    #[test]
    fn macs_bind_every_input(
        addr in 0u64..(1 << 40),
        major in any::<u64>(),
        minor in 0u8..128,
        data in proptest::collection::vec(any::<u8>(), 128..=128),
        flip in 0usize..128
    ) {
        let eng = MacEngine::new(MacKey([7u8; 16]));
        let (first, second) = eng.both_levels(addr, major, minor, &data);
        let mut tampered = data.clone();
        tampered[flip] ^= 0x10;
        let (first2, second2) = eng.both_levels(addr, major, minor, &tampered);
        prop_assert_ne!(first, first2);
        prop_assert_ne!(second, second2);
    }

    #[test]
    fn counter_groups_roundtrip_after_any_increments(
        increments in proptest::collection::vec(0usize..32, 0..300)
    ) {
        let mut g = CounterGroup::new(32);
        for i in increments {
            g.increment(i);
        }
        let back = CounterGroup::from_bytes(&g.to_bytes(), 32);
        prop_assert_eq!(back, g);
    }

    #[test]
    fn merkle_root_depends_on_every_leaf(
        leaves in proptest::collection::vec((0u64..512, any::<u64>()), 1..40),
        tweak_idx in 0usize..40
    ) {
        // Duplicate indices overwrite (last wins), so tweak the *final*
        // state of one leaf, not an intermediate update.
        let final_state: std::collections::BTreeMap<u64, u64> =
            leaves.iter().copied().collect();
        let cfg = MerkleConfig::new(8, 512);
        let a = BonsaiTree::from_leaves(cfg, 99, final_state.clone());
        let mut tweaked = final_state.clone();
        let key = *tweaked.keys().nth(tweak_idx % tweaked.len()).unwrap();
        tweaked.insert(key, final_state[&key].wrapping_add(1));
        let b = BonsaiTree::from_leaves(cfg, 99, tweaked);
        prop_assert_ne!(a.root(), b.root());
    }

    #[test]
    fn merkle_verification_rejects_wrong_hashes(
        index in 0u64..512,
        value in 1u64..,
    ) {
        let mut t = BonsaiTree::new(MerkleConfig::new(8, 512), 5);
        t.update_leaf(index, value);
        prop_assert!(t.verify_leaf(index, value));
        prop_assert!(!t.verify_leaf(index, value.wrapping_add(1)));
    }
}

#[test]
fn second_level_mac_gate_rejects_forged_partial_updates() {
    // The recovery-merge rule: an entry merges only if its second-level
    // MAC matches the one recomputed from the persisted ciphertext. A
    // forged minor in a PUB entry must not pass.
    let eng = MacEngine::new(MacKey([9u8; 16]));
    let ctr = CtrMode::new(b"prop-test-key..!");
    let addr = 0x4000u64;
    let data = vec![0x5Au8; 128];
    let ct = ctr.encrypt(addr, 3, 7, &data);
    let (_, genuine) = eng.both_levels(addr, 3, 7, &ct);

    // Attacker claims the counter was 8 instead of 7.
    let first_forged = eng.first_level(addr, 3, 8, &ct);
    let second_forged = eng.second_level(addr, &first_forged);
    assert_ne!(genuine, second_forged, "forged counter must not verify");
}
