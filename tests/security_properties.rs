//! Property-based security tests spanning the crypto, core and merkle
//! crates: the invariants that make Thoth's crash consistency *secure*,
//! exercised with the deterministic thoth-testkit harness.

use thoth_repro::core::{PartialUpdate, PubBlockCodec};
use thoth_repro::crypto::counter::CounterGroup;
use thoth_repro::crypto::{CtrMode, MacEngine, MacKey};
use thoth_repro::merkle::{BonsaiTree, MerkleConfig};
use thoth_testkit::{check, Gen};

fn arb_update(g: &mut Gen) -> PartialUpdate {
    PartialUpdate {
        block_index: g.u64() as u32,
        minor: g.below(128) as u8,
        mac2: g.u64(),
        ctr_status: g.bool(),
        mac_status: g.bool(),
    }
}

#[test]
fn pub_codec_roundtrips_any_entries() {
    check(64, |g| {
        let updates = g.vec_of(1, 10, arb_update);
        let codec = PubBlockCodec::new(128);
        let mut decoded = codec.decode(&codec.encode(&updates));
        // Crash padding collapses *adjacent duplicates*; reinflate for
        // comparison by deduping the input the same way.
        let mut expect = updates.clone();
        expect.dedup();
        decoded.truncate(expect.len());
        assert_eq!(decoded, expect);
    });
}

#[test]
fn ctr_mode_roundtrips_and_is_counter_sensitive() {
    let ctr = CtrMode::new(b"prop-test-key..!");
    check(64, |g| {
        let addr = g.below(1 << 40);
        let major = g.u64();
        let minor = g.below(128) as u8;
        let data = g.byte_vec(128);
        let ct = ctr.encrypt(addr, major, minor, &data);
        assert_eq!(ctr.decrypt(addr, major, minor, &ct), data);
        let wrong = ctr.decrypt(addr, major, minor ^ 1, &ct);
        assert_ne!(wrong, data);
    });
}

#[test]
fn macs_bind_every_input() {
    let eng = MacEngine::new(MacKey([7u8; 16]));
    check(64, |g| {
        let addr = g.below(1 << 40);
        let major = g.u64();
        let minor = g.below(128) as u8;
        let data = g.byte_vec(128);
        let flip = g.range_usize(0, 128);
        let (first, second) = eng.both_levels(addr, major, minor, &data);
        let mut tampered = data.clone();
        tampered[flip] ^= 0x10;
        let (first2, second2) = eng.both_levels(addr, major, minor, &tampered);
        assert_ne!(first, first2);
        assert_ne!(second, second2);
    });
}

#[test]
fn counter_groups_roundtrip_after_any_increments() {
    check(64, |g| {
        let increments = g.vec_of(0, 300, |g| g.range_usize(0, 32));
        let mut grp = CounterGroup::new(32);
        for i in increments {
            grp.increment(i);
        }
        let back = CounterGroup::from_bytes(&grp.to_bytes(), 32);
        assert_eq!(back, grp);
    });
}

#[test]
fn merkle_root_depends_on_every_leaf() {
    check(64, |g| {
        let leaves = g.vec_of(1, 40, |g| (g.below(512), g.u64()));
        let tweak_idx = g.range_usize(0, 40);
        // Duplicate indices overwrite (last wins), so tweak the *final*
        // state of one leaf, not an intermediate update.
        let final_state: std::collections::BTreeMap<u64, u64> =
            leaves.iter().copied().collect();
        let cfg = MerkleConfig::new(8, 512);
        let a = BonsaiTree::from_leaves(cfg, 99, final_state.clone());
        let mut tweaked = final_state.clone();
        let key = *tweaked.keys().nth(tweak_idx % tweaked.len()).unwrap();
        tweaked.insert(key, final_state[&key].wrapping_add(1));
        let b = BonsaiTree::from_leaves(cfg, 99, tweaked);
        assert_ne!(a.root(), b.root());
    });
}

#[test]
fn merkle_verification_rejects_wrong_hashes() {
    check(64, |g| {
        let index = g.below(512);
        let value = g.range(1, u64::MAX);
        let mut t = BonsaiTree::new(MerkleConfig::new(8, 512), 5);
        t.update_leaf(index, value);
        assert!(t.verify_leaf(index, value));
        assert!(!t.verify_leaf(index, value.wrapping_add(1)));
    });
}

#[test]
fn second_level_mac_gate_rejects_forged_partial_updates() {
    // The recovery-merge rule: an entry merges only if its second-level
    // MAC matches the one recomputed from the persisted ciphertext. A
    // forged minor in a PUB entry must not pass.
    let eng = MacEngine::new(MacKey([9u8; 16]));
    let ctr = CtrMode::new(b"prop-test-key..!");
    let addr = 0x4000u64;
    let data = vec![0x5Au8; 128];
    let ct = ctr.encrypt(addr, 3, 7, &data);
    let (_, genuine) = eng.both_levels(addr, 3, 7, &ct);

    // Attacker claims the counter was 8 instead of 7.
    let first_forged = eng.first_level(addr, 3, 8, &ct);
    let second_forged = eng.second_level(addr, &first_forged);
    assert_ne!(genuine, second_forged, "forged counter must not verify");
}
