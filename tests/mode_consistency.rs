//! Consistency tests across simulation fidelity modes and geometries:
//! `FunctionalMode::Fast` must be a pure optimization (identical policy
//! decisions, write counts and timing to `Full`), and recovery must work
//! at every block size and across PUB wraparound.

use thoth_repro::sim::{run_trace, FunctionalMode, Mode, SecureNvm, SimConfig};
use thoth_repro::workloads::{spec, MultiCoreTrace, WorkloadConfig, WorkloadKind};

fn tiny_trace(kind: WorkloadKind) -> MultiCoreTrace {
    let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.01);
    cfg.cores = 2;
    cfg.footprint = if kind == WorkloadKind::Swap { 4 } else { 3_000 };
    cfg.prepopulate = cfg.footprint / 2;
    spec::generate(cfg)
}

/// `Fast` skips the AES/byte work but must not change a single simulated
/// event: same cycles, same writes per category, same PUB behaviour.
#[test]
fn fast_mode_is_observationally_identical_to_full() {
    for kind in [WorkloadKind::Btree, WorkloadKind::Hashmap, WorkloadKind::Swap] {
        let trace = tiny_trace(kind);
        for mode in [
            Mode::baseline(),
            Mode::thoth_wtsc(),
            Mode::phoenix(),
            Mode::freij_strict(),
            Mode::freij_lazy(),
        ] {
            let mut full_cfg = SimConfig::paper_default(mode, 128);
            full_cfg.functional = FunctionalMode::Full;
            full_cfg.pub_size_bytes = 128 << 10;
            let mut fast_cfg = full_cfg.clone();
            fast_cfg.functional = FunctionalMode::Fast;

            let full = run_trace(&full_cfg, &trace);
            let fast = run_trace(&fast_cfg, &trace);
            assert_eq!(full.total_cycles, fast.total_cycles, "{kind}/{}", mode.label());
            assert_eq!(full.writes, fast.writes, "{kind}/{}", mode.label());
            assert_eq!(full.pub_evictions, fast.pub_evictions, "{kind}");
            assert_eq!(full.pcb_merged, fast.pcb_merged, "{kind}");
            assert_eq!(
                full.pub_policy_persists, fast.pub_policy_persists,
                "{kind}: policy decisions must not depend on fidelity mode"
            );
        }
    }
}

/// Crash recovery must verify at 256 B blocks (19-entry PUB packing,
/// 32 B first-level MACs, 176-block counter groups) just as at 128 B.
#[test]
fn recovery_is_clean_at_256_byte_blocks() {
    for kind in [WorkloadKind::Btree, WorkloadKind::Swap] {
        let mut cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 256);
        cfg.functional = FunctionalMode::Full;
        cfg.pub_size_bytes = 64 << 10;
        cfg.pub_prefill = false;
        let mut m = SecureNvm::new(cfg);
        m.run(&tiny_trace(kind));
        m.crash();
        let rec = m.recover();
        assert!(rec.is_clean(), "{kind} @256B: {rec:?}");
        assert!(rec.blocks_verified > 0, "{kind}");
    }
}

/// Each extension mechanism's recovery procedure (Phoenix rebuilds the
/// first-level MAC region; freij-lazy replays dirty tree nodes) must
/// also verify off the 128 B paper geometry.
#[test]
fn extension_mechanisms_recover_cleanly_at_256_byte_blocks() {
    for mode in [Mode::phoenix(), Mode::freij_strict(), Mode::freij_lazy()] {
        let mut cfg = SimConfig::paper_default(mode, 256);
        cfg.functional = FunctionalMode::Full;
        cfg.pub_size_bytes = 64 << 10;
        cfg.pub_prefill = false;
        let mut m = SecureNvm::new(cfg);
        m.run(&tiny_trace(WorkloadKind::Btree));
        m.crash();
        let rec = m.recover();
        assert!(rec.is_clean(), "{} @256B: {rec:?}", mode.label());
        assert!(rec.blocks_verified > 0, "{}", mode.label());
    }
}

/// Recovery with a PUB small enough that the circular FIFO wrapped many
/// times before the crash: scan order and merging must still be correct.
#[test]
fn recovery_survives_pub_wraparound() {
    let mut cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
    cfg.functional = FunctionalMode::Full;
    // 64 blocks: at the 80% threshold the buffer evicts constantly and
    // the start/end registers wrap dozens of times.
    cfg.pub_size_bytes = 64 * 128;
    cfg.pub_prefill = false;
    let mut m = SecureNvm::new(cfg);
    m.run(&tiny_trace(WorkloadKind::Hashmap));
    m.crash();
    let rec = m.recover();
    assert!(rec.is_clean(), "{rec:?}");
    // The tiny buffer forces real evictions during the run.
    assert!(rec.pub_blocks_scanned <= 64);
}

/// Recovery must also verify under the 64 B classic-DDR geometry.
#[test]
fn recovery_is_clean_at_64_byte_blocks() {
    let mut cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 64);
    cfg.functional = FunctionalMode::Full;
    cfg.pub_size_bytes = 64 << 10;
    cfg.pub_prefill = false;
    let mut m = SecureNvm::new(cfg);
    m.run(&tiny_trace(WorkloadKind::Ctree));
    m.crash();
    let rec = m.recover();
    assert!(rec.is_clean(), "{rec:?}");
}

/// The measured recovery time must be reported and scale with the number
/// of scanned entries.
#[test]
fn measured_recovery_time_tracks_pub_size() {
    // A longer trace, so the small PUB wraps while the large one holds
    // every emitted block.
    let mut wl = WorkloadConfig::paper_default(WorkloadKind::Btree).scaled(0.05);
    wl.cores = 2;
    wl.footprint = 3_000;
    wl.prepopulate = 1_500;
    let trace = spec::generate(wl);
    let run_with_pub = |pub_bytes: u64| {
        let mut cfg = SimConfig::paper_default(Mode::thoth_wtsc(), 128);
        cfg.functional = FunctionalMode::Full;
        cfg.pub_size_bytes = pub_bytes;
        cfg.pub_prefill = false;
        let mut m = SecureNvm::new(cfg);
        m.run(&trace);
        m.crash();
        m.recover()
    };
    let small = run_with_pub(64 * 128);
    let large = run_with_pub(512 << 10);
    assert!(large.pub_blocks_scanned > small.pub_blocks_scanned);
    assert!(large.measured_seconds > small.measured_seconds);
    assert!(small.measured_seconds >= 0.0);
}
