//! Crash-consistency integration tests: power failures at arbitrary
//! points, recovery verification, and tamper detection — all in full
//! functional mode (real AES ciphertexts and MACs in simulated NVM).

use thoth_repro::sim::{FunctionalMode, Mode, SecureNvm, SimConfig};
use thoth_repro::workloads::{spec, MultiCoreTrace, TraceOp, WorkloadConfig, WorkloadKind};

fn full_cfg(mode: Mode) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode, 128);
    cfg.functional = FunctionalMode::Full;
    cfg.pub_size_bytes = 64 << 10;
    cfg.pub_prefill = false;
    cfg
}

fn tiny_trace(kind: WorkloadKind) -> MultiCoreTrace {
    let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.01);
    cfg.cores = 2;
    cfg.footprint = if kind == WorkloadKind::Swap { 4 } else { 3_000 };
    cfg.prepopulate = cfg.footprint / 2;
    spec::generate(cfg)
}

/// Truncates a trace after a fraction of each core's ops, at a
/// transaction boundary — simulating a crash mid-run.
fn truncate(trace: &MultiCoreTrace, fraction: f64) -> MultiCoreTrace {
    let cores = trace
        .cores
        .iter()
        .map(|ops| {
            let cut = (ops.len() as f64 * fraction) as usize;
            let upto = ops[..cut.min(ops.len())]
                .iter()
                .rposition(|op| matches!(op, TraceOp::Commit))
                .map_or(0, |p| p + 1);
            ops[..upto].to_vec()
        })
        .collect();
    MultiCoreTrace {
        cores,
        warmup_txs_per_core: 0,
    }
}

#[test]
fn recovery_is_clean_for_all_workloads_thoth() {
    for kind in WorkloadKind::ALL {
        let mut m = SecureNvm::new(full_cfg(Mode::thoth_wtsc()));
        m.run(&tiny_trace(kind));
        m.crash();
        let rec = m.recover();
        assert!(rec.root_verified, "{kind}: root must verify");
        assert_eq!(rec.blocks_failed, 0, "{kind}: all data must authenticate");
        assert!(rec.blocks_verified > 0, "{kind}");
    }
}

#[test]
fn recovery_is_clean_under_wtbc() {
    let mut m = SecureNvm::new(full_cfg(Mode::thoth_wtbc()));
    m.run(&tiny_trace(WorkloadKind::Hashmap));
    m.crash();
    assert!(m.recover().is_clean());
}

#[test]
fn crash_at_many_points_recovers_cleanly() {
    let trace = tiny_trace(WorkloadKind::Ctree);
    for fraction in [0.1, 0.35, 0.6, 0.9] {
        let cut = truncate(&trace, fraction);
        let mut m = SecureNvm::new(full_cfg(Mode::thoth_wtsc()));
        m.run(&cut);
        m.crash();
        let rec = m.recover();
        assert!(rec.is_clean(), "crash at {fraction}: {rec:?}");
    }
}

#[test]
fn double_crash_recover_cycle_is_stable() {
    // Crash, recover, then crash again immediately: the second recovery
    // (empty PUB, consistent NVM) must also verify.
    let mut m = SecureNvm::new(full_cfg(Mode::thoth_wtsc()));
    m.run(&tiny_trace(WorkloadKind::Swap));
    m.crash();
    assert!(m.recover().is_clean());
    m.crash();
    let rec = m.recover();
    assert!(rec.is_clean());
    assert_eq!(rec.pub_blocks_scanned, 0, "PUB was consumed by recovery 1");
}

#[test]
fn ciphertext_tamper_is_detected() {
    let mut m = SecureNvm::new(full_cfg(Mode::thoth_wtsc()));
    m.run(&tiny_trace(WorkloadKind::Btree));
    m.crash();
    // Tamper with some data block we know was written: core 0's commit
    // record block (log region end) is written every transaction.
    let victim = 0x1000_0000u64 + (1 << 20) - 8;
    m.nvm_mut().tamper(victim, 0x80);
    let rec = m.recover();
    assert!(rec.blocks_failed > 0, "flipped ciphertext bit must fail MACs");
}

#[test]
fn counter_region_tamper_breaks_root_or_macs() {
    let mut m = SecureNvm::new(full_cfg(Mode::thoth_wtsc()));
    m.run(&tiny_trace(WorkloadKind::Btree));
    m.crash();
    let layout = m.layout();
    // Corrupt the counter block of a data block that is written every
    // transaction: core 0's commit record.
    let commit_rec_index = layout.block_index(0x1000_0000u64 + (1 << 20) - 8);
    let (cb, _, _) = layout.ctr_location(commit_rec_index);
    m.nvm_mut().tamper(cb + 3, 0xFF);
    let rec = m.recover();
    assert!(
        !rec.root_verified || rec.blocks_failed > 0,
        "counter tamper must break the root or the MAC chain: {rec:?}"
    );
}

#[test]
fn mac_region_tamper_is_detected() {
    let mut m = SecureNvm::new(full_cfg(Mode::thoth_wtsc()));
    m.run(&tiny_trace(WorkloadKind::Btree));
    m.crash();
    let layout = m.layout();
    let commit_rec_index = layout.block_index(0x1000_0000u64 + (1 << 20) - 8);
    let (mb, _) = layout.mac_location(commit_rec_index);
    m.nvm_mut().tamper(mb, 0x01);
    let rec = m.recover();
    // Either a PUB merge re-derives the correct MAC (repairing the
    // tamper) or verification flags it; it must never verify the forged
    // MAC as a *different* value silently.
    if rec.blocks_failed == 0 {
        // Repaired: re-run the verification to confirm consistency.
        assert!(rec.blocks_verified > 0);
    }
}

#[test]
fn pub_region_tamper_cannot_forge_state() {
    let mut m = SecureNvm::new(full_cfg(Mode::thoth_wtsc()));
    m.run(&tiny_trace(WorkloadKind::Hashmap));
    m.crash();
    let layout = m.layout();
    // Corrupt every valid PUB block's first bytes (entry addresses/MACs).
    let pub_blocks = m
        .nvm_mut()
        .block_addrs_in(layout.pub_base, layout.pub_base + (1 << 20));
    assert!(!pub_blocks.is_empty(), "PUB content exists");
    for b in pub_blocks.iter().take(4) {
        m.nvm_mut().tamper(*b + 4, 0xA5);
    }
    let rec = m.recover();
    // Forged entries must be rejected by the second-level-MAC check (they
    // become "stale"), and whatever merges must still be consistent; the
    // forgery may at worst lose the newest updates, which the root check
    // then reports — it must never produce a verified-but-wrong state.
    assert!(rec.entries_stale > 0 || rec.is_clean());
}

#[test]
fn baseline_crash_needs_no_pub_and_verifies() {
    let mut m = SecureNvm::new(full_cfg(Mode::baseline()));
    m.run(&tiny_trace(WorkloadKind::Rbtree));
    m.crash();
    let rec = m.recover();
    assert!(rec.is_clean());
    assert_eq!(rec.entries_examined, 0);
}

#[test]
fn eadr_crash_recovers_cleanly_without_a_pub() {
    // eADR's residual power flushes the caches; recovery finds a fully
    // consistent NVM with nothing to merge.
    let mut m = SecureNvm::new(full_cfg(Mode::eadr()));
    m.run(&tiny_trace(WorkloadKind::Btree));
    m.crash();
    let rec = m.recover();
    assert!(rec.is_clean(), "{rec:?}");
    assert_eq!(rec.entries_examined, 0);
    assert!(rec.blocks_verified > 0);
}

#[test]
fn after_wpq_arrangement_recovers_cleanly() {
    use thoth_repro::sim::PcbArrangement;
    let mut cfg = full_cfg(Mode::thoth_wtsc());
    cfg.pcb_arrangement = PcbArrangement::AfterWpq;
    let mut m = SecureNvm::new(cfg);
    m.run(&tiny_trace(WorkloadKind::Hashmap));
    m.crash();
    assert!(m.recover().is_clean());
}

#[test]
fn queue_extension_recovers_cleanly() {
    let mut wl = WorkloadConfig::paper_default(WorkloadKind::Queue).scaled(0.01);
    wl.cores = 2;
    wl.footprint = 16;
    let mut m = SecureNvm::new(full_cfg(Mode::thoth_wtsc()));
    m.run(&spec::generate(wl));
    m.crash();
    assert!(m.recover().is_clean());
}
