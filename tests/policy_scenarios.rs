//! Transcriptions of the paper's Figures 5 and 6: the event sequences
//! demonstrating how WTBC and WTSC classify and act on PUB evictions.
//!
//! Each test stages the exact cache/buffer state of one figure event
//! through the Figure-3 analysis engine (which applies the same policy
//! logic the machine uses) and checks the figure's stated action.

use thoth_repro::cache::CacheConfig;
use thoth_repro::core::analysis::{MetaUpdate, PubAnalysis};
use thoth_repro::core::policy::BlockView;
use thoth_repro::core::{EvictOutcome, EvictionPolicy};

fn cache_cfg() -> CacheConfig {
    CacheConfig::new(4096, 4, 64)
}

/// Figure 5/6, Event 4: the metadata block was naturally evicted from the
/// cache before the partial update left the buffer — the eviction's
/// write-back already persisted the update, so both policies skip.
#[test]
fn event_natural_eviction_then_pub_eviction_skips() {
    // 1-set/1-way cache: inserting a second block evicts the first.
    let tiny = CacheConfig::new(64, 1, 64);
    for policy in [EvictionPolicy::Wtsc, EvictionPolicy::Wtbc] {
        let mut a = PubAnalysis::new(tiny, 2, policy);
        a.record(MetaUpdate { meta_block: 0, subblock: 0, value: 1 }); // U1
        a.record(MetaUpdate { meta_block: 64, subblock: 0, value: 2 }); // evicts block 0
        // One more record pushes U1 (and only U1) out of the 2-entry FIFO.
        a.record(MetaUpdate { meta_block: 64, subblock: 1, value: 3 });
        let b = a.breakdown();
        assert_eq!(b.total(), 1, "{policy:?}");
        assert_eq!(b.count(EvictOutcome::AlreadyEvicted), 1, "{policy:?}");
        assert_eq!(b.policy_persists, 0, "no write needed ({policy:?})");
        assert_eq!(a.natural_writebacks, 1);
    }
}

/// Figure 5/6, Event 6: an earlier partial update's eviction persisted
/// the whole metadata block; the sibling update that shared the block is
/// then found clean and skipped.
#[test]
fn event_sibling_persist_then_clean_copy_skip() {
    for policy in [EvictionPolicy::Wtsc, EvictionPolicy::Wtbc] {
        let mut a = PubAnalysis::new(cache_cfg(), 2, policy);
        // Two updates to different words of the same block; both queued.
        a.record(MetaUpdate { meta_block: 0, subblock: 0, value: 1 }); // U1 (dirtying)
        a.record(MetaUpdate { meta_block: 0, subblock: 1, value: 2 }); // U2
        // Unrelated traffic forces both evictions in order.
        a.record(MetaUpdate { meta_block: 4096, subblock: 0, value: 3 });
        a.record(MetaUpdate { meta_block: 8192, subblock: 0, value: 4 });
        let b = a.breakdown();
        // U1: block dirty with U1 still the latest value -> persist.
        assert_eq!(b.count(EvictOutcome::WrittenBack), 1, "{policy:?}");
        // U2: the persist cleaned the block -> clean-copy skip.
        assert_eq!(b.count(EvictOutcome::CleanCopy), 1, "{policy:?}");
        assert_eq!(b.policy_persists, 1, "{policy:?}");
    }
}

/// Figure 5, stale case: a newer partial update to the *same* word makes
/// the older buffered entry stale. WTBC's value comparison detects it and
/// skips; WTSC (Figure 6) conservatively persists because the entry's
/// status bit is set and the block is still dirty.
#[test]
fn event_stale_update_wtbc_skips_wtsc_persists() {
    let run = |policy| {
        let mut a = PubAnalysis::new(cache_cfg(), 1, policy);
        a.record(MetaUpdate { meta_block: 0, subblock: 0, value: 1 }); // U1 (status=1)
        a.record(MetaUpdate { meta_block: 0, subblock: 0, value: 2 }); // U2 evicts U1
        a.breakdown()
    };
    let wtbc = run(EvictionPolicy::Wtbc);
    assert_eq!(wtbc.count(EvictOutcome::StaleCopy), 1);
    assert_eq!(wtbc.policy_persists, 0, "WTBC detects staleness precisely");

    let wtsc = run(EvictionPolicy::Wtsc);
    assert_eq!(wtsc.count(EvictOutcome::StaleCopy), 1, "ground truth is stale");
    assert_eq!(
        wtsc.policy_persists, 1,
        "WTSC cannot see the value and persists conservatively"
    );
}

/// Figure 6's key status-bit rule: only the first update that turns a
/// block dirty carries status=1; followers carry status=0 and never
/// persist under WTSC, because the dirtying entry's eviction covers them.
#[test]
fn event_status_bit_only_first_dirtier_persists() {
    let mut a = PubAnalysis::new(cache_cfg(), 3, EvictionPolicy::Wtsc);
    // Three updates to distinct words of one block while it stays dirty.
    a.record(MetaUpdate { meta_block: 0, subblock: 0, value: 1 }); // status=1
    a.record(MetaUpdate { meta_block: 0, subblock: 1, value: 2 }); // status=0
    a.record(MetaUpdate { meta_block: 0, subblock: 2, value: 3 }); // status=0
    // Exactly three fillers push the three updates (and nothing else) out.
    for v in 4..7 {
        a.record(MetaUpdate { meta_block: 4096, subblock: 0, value: v });
    }
    let b = a.breakdown();
    // Exactly one persist: the status-1 entry. Its persist carried the
    // other two updates (they classify as clean copies).
    assert_eq!(b.policy_persists, 1);
    assert_eq!(b.count(EvictOutcome::WrittenBack), 1);
    assert_eq!(b.count(EvictOutcome::CleanCopy), 2);
}

/// The raw policy rules of Section IV-B, stated directly.
#[test]
fn policy_truth_table_matches_section_iv_b() {
    use EvictionPolicy::{Wtbc, Wtsc};
    let dirty_latest = BlockView::Dirty { subblock_dirty: true, value_matches: true };
    let dirty_stale = BlockView::Dirty { subblock_dirty: true, value_matches: false };
    let dirty_other = BlockView::Dirty { subblock_dirty: false, value_matches: false };

    // WTSC: persist iff status bit set AND block dirty.
    assert!(Wtsc.requires_persist(true, dirty_latest));
    assert!(Wtsc.requires_persist(true, dirty_stale));
    assert!(!Wtsc.requires_persist(false, dirty_latest));
    assert!(!Wtsc.requires_persist(true, BlockView::Clean));
    assert!(!Wtsc.requires_persist(true, BlockView::NotPresent));

    // WTBC: persist iff the word's dirty bit is set and the entry still
    // holds the latest (verified) value — status bit irrelevant.
    for status in [false, true] {
        assert!(Wtbc.requires_persist(status, dirty_latest));
        assert!(!Wtbc.requires_persist(status, dirty_stale));
        assert!(!Wtbc.requires_persist(status, dirty_other));
        assert!(!Wtbc.requires_persist(status, BlockView::Clean));
        assert!(!Wtbc.requires_persist(status, BlockView::NotPresent));
    }
}
