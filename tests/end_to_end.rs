//! End-to-end integration: every workload through every machine mode,
//! checking the cross-crate invariants the reproduction rests on.

use thoth_repro::nvm::WriteCategory;
use thoth_repro::sim::{run_trace, Mode, SimConfig, SimReport};
use thoth_repro::workloads::{spec, MultiCoreTrace, WorkloadConfig, WorkloadKind};

fn quick_trace(kind: WorkloadKind) -> MultiCoreTrace {
    let mut cfg = WorkloadConfig::paper_default(kind).scaled(0.02);
    cfg.footprint = if kind == WorkloadKind::Swap { 4 } else { 5_000 };
    cfg.prepopulate = cfg.footprint / 2;
    spec::generate(cfg)
}

fn small_cfg(mode: Mode, block: usize) -> SimConfig {
    let mut c = SimConfig::paper_default(mode, block);
    c.pub_size_bytes = 128 << 10; // keep the PUB active at tiny scales
    c
}

fn run(kind: WorkloadKind, mode: Mode, block: usize) -> SimReport {
    run_trace(&small_cfg(mode, block), &quick_trace(kind))
}

#[test]
fn every_workload_runs_in_every_mode() {
    for kind in WorkloadKind::ALL {
        for mode in [
            Mode::baseline(),
            Mode::thoth_wtsc(),
            Mode::thoth_wtbc(),
            Mode::AnubisEcc,
        ] {
            let r = run(kind, mode, 128);
            assert!(r.total_cycles > 0, "{kind}/{}", mode.label());
            assert!(r.transactions > 0, "{kind}/{}", mode.label());
        }
    }
}

#[test]
fn thoth_never_writes_more_than_baseline() {
    for kind in WorkloadKind::ALL {
        let base = run(kind, Mode::baseline(), 128);
        let thoth = run(kind, Mode::thoth_wtsc(), 128);
        assert!(
            thoth.writes_total() <= base.writes_total(),
            "{kind}: thoth {} > baseline {}",
            thoth.writes_total(),
            base.writes_total()
        );
    }
}

#[test]
fn anubis_ideal_lower_bounds_thoth_writes() {
    for kind in [WorkloadKind::Btree, WorkloadKind::Hashmap] {
        let thoth = run(kind, Mode::thoth_wtsc(), 128);
        let ideal = run(kind, Mode::AnubisEcc, 128);
        assert!(
            ideal.writes_total() <= thoth.writes_total(),
            "{kind}: ideal {} > thoth {}",
            ideal.writes_total(),
            thoth.writes_total()
        );
    }
}

#[test]
fn baseline_emits_no_pub_traffic_and_thoth_does() {
    let base = run(WorkloadKind::Ctree, Mode::baseline(), 128);
    assert_eq!(base.writes_in(WriteCategory::PubBlock), 0);
    assert_eq!(base.pcb_inserts, 0);
    let thoth = run(WorkloadKind::Ctree, Mode::thoth_wtsc(), 128);
    assert!(thoth.writes_in(WriteCategory::PubBlock) > 0);
    assert!(thoth.pcb_inserts > 0);
}

#[test]
fn both_block_sizes_work() {
    for block in [128usize, 256] {
        let base = run(WorkloadKind::Hashmap, Mode::baseline(), block);
        let thoth = run(WorkloadKind::Hashmap, Mode::thoth_wtsc(), block);
        assert!(base.writes_total() > 0, "block {block}");
        assert!(thoth.writes_total() <= base.writes_total(), "block {block}");
    }
}

#[test]
fn reports_are_deterministic_across_runs() {
    let trace = quick_trace(WorkloadKind::Rbtree);
    let cfg = small_cfg(Mode::thoth_wtsc(), 128);
    let a = run_trace(&cfg, &trace);
    let b = run_trace(&cfg, &trace);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.writes, b.writes);
    assert_eq!(a.pub_evictions, b.pub_evictions);
    assert_eq!(a.pcb_merged, b.pcb_merged);
}

#[test]
fn wtsc_persists_at_least_as_much_as_wtbc() {
    for kind in [WorkloadKind::Btree, WorkloadKind::Hashmap] {
        let wtsc = run(kind, Mode::thoth_wtsc(), 128);
        let wtbc = run(kind, Mode::thoth_wtbc(), 128);
        assert!(
            wtsc.pub_policy_persists >= wtbc.pub_policy_persists,
            "{kind}: WTSC {} < WTBC {} (WTSC is the conservative policy)",
            wtsc.pub_policy_persists,
            wtbc.pub_policy_persists
        );
    }
}

#[test]
fn transactions_counted_match_trace() {
    let trace = quick_trace(WorkloadKind::Swap);
    let measured: usize = trace.total_txs() - trace.warmup_txs_per_core * trace.cores.len();
    let r = run_trace(&small_cfg(Mode::baseline(), 128), &trace);
    assert_eq!(r.transactions as usize, measured);
}

#[test]
fn tx_size_sweep_changes_traffic_volume() {
    let mut small = WorkloadConfig::paper_default(WorkloadKind::Btree).scaled(0.02);
    small.footprint = 5_000;
    small.prepopulate = 2_500;
    let mut large = small;
    large.tx_size = 1024;
    let rs = run_trace(&small_cfg(Mode::baseline(), 128), &spec::generate(small));
    let rl = run_trace(&small_cfg(Mode::baseline(), 128), &spec::generate(large));
    assert!(
        rl.writes_in(WriteCategory::Data) > rs.writes_in(WriteCategory::Data),
        "1 KB transactions must write more data blocks"
    );
}

#[test]
fn cache_hit_rates_are_sane() {
    let r = run(WorkloadKind::Btree, Mode::thoth_wtsc(), 128);
    for (name, v) in [
        ("ctr", r.ctr_cache_hit_rate),
        ("mac", r.mac_cache_hit_rate),
        ("llc", r.llc_hit_rate),
    ] {
        assert!((0.0..=1.0).contains(&v), "{name} hit rate {v}");
    }
    assert!(r.llc_hit_rate > 0.3, "LLC should absorb most reads");
}

#[test]
fn eadr_never_loses_to_thoth() {
    // The eADR machine (paper's future work) ACKs persists immediately;
    // no ADR-domain scheme can beat whole-hierarchy persistence.
    for kind in [WorkloadKind::Btree, WorkloadKind::Hashmap] {
        let thoth = run(kind, Mode::thoth_wtsc(), 128);
        let eadr = run(kind, Mode::eadr(), 128);
        assert!(
            eadr.total_cycles <= thoth.total_cycles,
            "{kind}: eadr {} > thoth {}",
            eadr.total_cycles,
            thoth.total_cycles
        );
        assert_eq!(eadr.pcb_inserts, 0, "eADR needs no PCB");
        assert_eq!(eadr.writes_in(WriteCategory::PubBlock), 0);
    }
}

#[test]
fn pcb_after_wpq_performs_like_before_wpq() {
    // Section IV-C: the paper found the augmented PCB-before-WPQ design
    // obtains similar performance to PCB-after-WPQ.
    use thoth_repro::sim::PcbArrangement;
    for kind in [WorkloadKind::Btree, WorkloadKind::Swap] {
        let trace = quick_trace(kind);
        let before = run_trace(&small_cfg(Mode::thoth_wtsc(), 128), &trace);
        let mut cfg = small_cfg(Mode::thoth_wtsc(), 128);
        cfg.pcb_arrangement = PcbArrangement::AfterWpq;
        let after = run_trace(&cfg, &trace);
        let ratio = after.total_cycles as f64 / before.total_cycles.max(1) as f64;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "{kind}: arrangements should perform similarly, ratio {ratio:.3}"
        );
    }
}

#[test]
fn queue_extension_workload_runs_in_all_modes() {
    let mut cfg = WorkloadConfig::paper_default(WorkloadKind::Queue).scaled(0.02);
    cfg.footprint = 32;
    let trace = spec::generate(cfg);
    let base = run_trace(&small_cfg(Mode::baseline(), 128), &trace);
    let thoth = run_trace(&small_cfg(Mode::thoth_wtsc(), 128), &trace);
    assert!(base.transactions > 0);
    assert!(thoth.writes_total() <= base.writes_total());
}
