#!/usr/bin/env bash
# Tier-1 gate: build, tests, and lint — fully offline (the workspace has
# zero external dependencies; see DESIGN.md §5 and the committed
# Cargo.lock). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release --locked

echo "== tests =="
cargo test -q --locked

echo "== clippy (deny warnings) =="
cargo clippy --all-targets --locked -- -D warnings

echo "== thoth-lint (repo invariants) =="
cargo run -q --release --locked -p thoth-lint

echo "== mode parity (trait refactor must not move the golden quick matrix) =="
cargo test -q --locked -p thoth-sim --test mode_parity

echo "== ablation smoke (incl. six-mechanism comparison table) =="
cargo run -q --release --locked -p thoth-experiments -- ablation --quick

echo "== crashtest smoke (sampled crash points, all workloads) =="
cargo run -q --release --locked -p thoth-experiments -- crashtest --quick

echo "== psan (sanitizer clean sweep + seeded-bug corpus) =="
cargo run -q --release --locked -p thoth-experiments -- psan --quick

echo "== fuzz (persist-trace fuzzer, three-observer cross-check) =="
cargo run -q --release --locked -p thoth-experiments -- fuzz --quick

echo "== telemetry (observability layer unit tests) =="
cargo test -q --locked -p thoth-telemetry

echo "== telemetry smoke (neutrality + artifact schema, one workload) =="
cargo run -q --release --locked -p thoth-experiments -- telemetry --quick

echo "== service smoke (open-loop saturation: finite monotone quantiles + knee) =="
cargo run -q --release --locked -p thoth-experiments -- service --quick

echo "== perf digest gate (quick matrix must match the pinned digest) =="
cargo run -q --release --locked -p thoth-experiments -- perf --quick \
    --expect-digest 0xaa9ddf0ced976c32

echo "== perf digest gate (scale 0.1 — exercises batch shapes quick mode misses) =="
cargo run -q --release --locked -p thoth-experiments -- perf --scale 0.1 \
    --expect-digest 0x7a4d2eee8b41f3a6

echo "== crypto with intrinsics disabled (thoth_soft_aes fallback must not rot) =="
RUSTFLAGS="--cfg thoth_soft_aes" cargo test -q --locked -p thoth-crypto

echo "== crypto with SIMD hashing disabled (thoth_soft_sip fallback must not rot) =="
RUSTFLAGS="--cfg thoth_soft_sip" cargo test -q --locked -p thoth-crypto

echo "ci: all green"
