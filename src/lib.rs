//! **thoth-repro** — a from-scratch Rust reproduction of
//! *Thoth: Bridging the Gap Between Persistently Secure Memories and
//! Memory Interfaces of Emerging NVMs* (Han, Tuck, Awad — HPCA 2023).
//!
//! Emerging NVM interfaces (DDR-T, CXL memory, DDR5 with on-die ECC) have
//! no host-visible ECC bits, so a crash-consistent secure memory can no
//! longer co-locate its encryption counters and MACs with data — it would
//! need two extra full-block writes per persistent store. Thoth replaces
//! those with 105-bit *partial updates* packed into a large persistent
//! FIFO in NVM (the PUB), combined on-chip in reserved ADR-backed WPQ
//! entries (the PCB), and filtered at eviction time by the WTSC/WTBC
//! policies so that almost no buffered update ever needs a metadata block
//! persist of its own.
//!
//! This facade crate re-exports the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim_engine`] | discrete-event kernel: cycles, event queue, stats, RNG |
//! | [`crypto`] | AES-128, counter-mode encryption, split counters, SipHash MACs |
//! | [`cache`] | set-associative write-back caches with subblock dirty masks |
//! | [`nvm`] | banked PCM device model + sparse functional store |
//! | [`merkle`] | Bonsai Merkle Tree + Anubis shadow tracking |
//! | [`memctrl`] | the ADR write-pending queue |
//! | [`core`] | **the paper's contribution**: PUB, PCB, WTSC/WTBC, recovery model |
//! | [`workloads`] | WHISPER-style persistent benchmarks |
//! | [`sim`] | the full-system machine (baseline / Thoth / ideal-Anubis) |
//! | [`experiments`] | regenerators for every table and figure |
//!
//! # Quickstart
//!
//! ```
//! use thoth_repro::sim::{run_trace, Mode, SimConfig};
//! use thoth_repro::workloads::{spec, WorkloadConfig, WorkloadKind};
//!
//! // Generate a (tiny) ctree workload trace and compare the baseline
//! // against Thoth.
//! let trace = spec::generate(
//!     WorkloadConfig::paper_default(WorkloadKind::Ctree).scaled(0.005),
//! );
//! let baseline = run_trace(&SimConfig::paper_default(Mode::baseline(), 128), &trace);
//! let thoth = run_trace(&SimConfig::paper_default(Mode::thoth_wtsc(), 128), &trace);
//!
//! assert!(thoth.writes_total() < baseline.writes_total());
//! ```

#![warn(missing_docs)]

pub use thoth_cache as cache;
pub use thoth_core as core;
pub use thoth_crypto as crypto;
pub use thoth_experiments as experiments;
pub use thoth_memctrl as memctrl;
pub use thoth_merkle as merkle;
pub use thoth_nvm as nvm;
pub use thoth_sim as sim;
pub use thoth_sim_engine as sim_engine;
pub use thoth_workloads as workloads;
